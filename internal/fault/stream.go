package fault

import (
	"math/rand"
	"sync"

	"ppm/internal/stripe"
)

// Source and Sink mirror internal/pipeline's interfaces structurally,
// so the wrappers below satisfy pipeline.Source/pipeline.Sink (and
// accept them) without this package importing the pipeline — the
// injection layer stays below every consumer.

// Source matches pipeline.Source.
type Source interface {
	Next(idx int, slab *stripe.Stripe) (*stripe.Stripe, error)
}

// Sink matches pipeline.Sink.
type Sink interface {
	Drain(idx int, st *stripe.Stripe) error
}

// FaultySource wraps a Source with scheduled fill-side faults: read
// errors fail the whole Next (transiently — the pipeline's retry
// policy re-calls it and the event count exhausts), latency and hangs
// delay it, and bit flips silently corrupt one sector of the scheduled
// disk's strip in the produced stripe.
type FaultySource struct {
	inner Source
	sched *Schedule
	mu    sync.Mutex // guards rng: abandoned hung ops overlap live ones
	rng   *rand.Rand
	// Release, when non-nil, unblocks in-flight Hang delays early.
	Release chan struct{}
}

// NewFaultySource wraps inner with the schedule's faults.
func NewFaultySource(inner Source, sched *Schedule) *FaultySource {
	return &FaultySource{inner: inner, sched: sched, rng: rand.New(rand.NewSource(sched.seed ^ 0x2545f4914f6cdd1d))}
}

// Schedule returns the live schedule.
func (s *FaultySource) Schedule() *Schedule { return s.sched }

// Next produces the wrapped source's stripe with stripe idx's
// scheduled faults applied. Fault events are keyed (stripe, disk);
// whichever disk has a live event fires it here, since the fill seam
// sees whole stripes.
func (s *FaultySource) Next(idx int, slab *stripe.Stripe) (*stripe.Stripe, error) {
	st, err := s.inner.Next(idx, slab)
	if err != nil || st == nil {
		return st, err
	}
	for d := 0; d < st.N(); d++ {
		if ev := s.sched.take(idx, d, Latency, Hang); ev != nil {
			delayOrRelease(ev.Delay, s.Release)
		}
		if ev := s.sched.take(idx, d, ReadError); ev != nil {
			return nil, &InjectedError{Event: *ev}
		}
		if ev := s.sched.take(idx, d, BitFlip); ev != nil {
			s.mu.Lock()
			row := s.rng.Intn(st.R())
			FlipByte(st.SectorAt(row, d), s.rng)
			s.mu.Unlock()
		}
	}
	return st, nil
}

// FaultySink wraps a Sink with scheduled drain-side faults: write
// errors fail the Drain transiently, latency and hangs delay it.
type FaultySink struct {
	inner Sink
	sched *Schedule
	// Release, when non-nil, unblocks in-flight Hang delays early.
	Release chan struct{}
}

// NewFaultySink wraps inner with the schedule's faults.
func NewFaultySink(inner Sink, sched *Schedule) *FaultySink {
	return &FaultySink{inner: inner, sched: sched}
}

// Drain forwards to the wrapped sink after firing stripe idx's
// scheduled write faults.
func (k *FaultySink) Drain(idx int, st *stripe.Stripe) error {
	for d := 0; d < st.N(); d++ {
		if ev := k.sched.take(idx, d, Latency, Hang); ev != nil {
			delayOrRelease(ev.Delay, k.Release)
		}
		if ev := k.sched.take(idx, d, WriteError); ev != nil {
			return &InjectedError{Event: *ev}
		}
	}
	return k.inner.Drain(idx, st)
}
