package fault

import (
	"context"
	"math/rand"
	"time"
)

// Policy is a bounded-retry policy: up to MaxAttempts tries, jittered
// exponential backoff between them, and an optional per-attempt
// deadline that abandons a hung attempt instead of waiting forever.
type Policy struct {
	// MaxAttempts caps the total tries (first attempt included);
	// <= 0 selects 1 (no retries).
	MaxAttempts int
	// BaseDelay is the backoff before the first retry; each further
	// retry doubles it up to MaxDelay. <= 0 selects 1ms.
	BaseDelay time.Duration
	// MaxDelay caps the backoff; <= 0 selects 1s.
	MaxDelay time.Duration
	// OpTimeout bounds one attempt; 0 means attempts may block
	// indefinitely. An attempt that outlives its deadline is abandoned
	// (its goroutine is left to finish on its own) and counted as a
	// transient ErrOpTimeout failure.
	OpTimeout time.Duration
	// Jitter scales the random spread applied to each backoff:
	// the sleep is d/2 + rand(d/2) at Jitter 1 (the default when
	// negative), exactly d at 0.
	Jitter float64
	// Seed drives the jitter RNG; retries are deterministic per policy
	// value, so a chaos run's timing is replayable.
	Seed int64
}

// DefaultPolicy is a sane interactive default: 4 attempts, 2ms backoff
// doubling to 100ms, 30s per-attempt deadline.
func DefaultPolicy() Policy {
	return Policy{MaxAttempts: 4, BaseDelay: 2 * time.Millisecond, MaxDelay: 100 * time.Millisecond, OpTimeout: 30 * time.Second, Jitter: 1}
}

func (p Policy) attempts() int {
	if p.MaxAttempts <= 0 {
		return 1
	}
	return p.MaxAttempts
}

func (p Policy) base() time.Duration {
	if p.BaseDelay <= 0 {
		return time.Millisecond
	}
	return p.BaseDelay
}

func (p Policy) max() time.Duration {
	if p.MaxDelay <= 0 {
		return time.Second
	}
	return p.MaxDelay
}

// Backoff returns the jittered sleep before retry number retry (0 is
// the first retry). Exported so other layers (the pipeline's own
// retry loop) can share the schedule shape without importing the
// injection machinery at their call sites.
func (p Policy) Backoff(retry int, rng *rand.Rand) time.Duration {
	d := p.base() << uint(retry)
	if d > p.max() || d <= 0 {
		d = p.max()
	}
	j := p.Jitter
	if j < 0 {
		j = 1
	}
	if j == 0 || rng == nil {
		return d
	}
	spread := time.Duration(float64(d) / 2 * j)
	if spread <= 0 {
		return d
	}
	return d - spread + time.Duration(rng.Int63n(int64(spread)+1))
}

// Do runs op under the policy: transient failures (per IsTransient)
// are retried with jittered exponential backoff until the attempt
// budget is spent; permanent failures and context cancellation return
// immediately. With OpTimeout set, each attempt runs on its own
// goroutine and is abandoned at the deadline — op must therefore be
// safe to abandon (a later attempt may run while an abandoned one is
// still blocked; use DoVal to hand results over safely instead of
// writing through shared state). The returned error is the last
// failure wrapped in *OpError with the attempt count.
func Do(ctx context.Context, name string, p Policy, op func() error) error {
	_, _, err := DoVal(ctx, name, p, func() (struct{}, error) { return struct{}{}, op() })
	return err
}

// DoVal is Do for ops that produce a value. The value crosses from the
// attempt goroutine on the completion channel, so an abandoned (hung)
// attempt's result is simply discarded — attempts should build their
// result in attempt-private storage rather than mutate shared buffers.
// Returns the successful value, the number of attempts spent, and the
// final error (nil on success).
func DoVal[T any](ctx context.Context, name string, p Policy, op func() (T, error)) (T, int, error) {
	var zero T
	var rng *rand.Rand
	attempts := p.attempts()
	var last error
	for i := 0; i < attempts; i++ {
		if ctx != nil && ctx.Err() != nil {
			return zero, i, &OpError{Op: name, Attempts: i, Err: ctx.Err()}
		}
		v, err := runOne(ctx, p, op)
		if err == nil {
			return v, i + 1, nil
		}
		last = err
		if !IsTransient(err) {
			return zero, i + 1, &OpError{Op: name, Attempts: i + 1, Err: err}
		}
		if i == attempts-1 {
			break
		}
		if rng == nil {
			rng = rand.New(rand.NewSource(p.Seed ^ 0x1e3779b97f4a7c15))
		}
		if !sleepCtx(ctx, p.Backoff(i, rng)) {
			return zero, i + 1, &OpError{Op: name, Attempts: i + 1, Err: ctx.Err()}
		}
	}
	return zero, attempts, &OpError{Op: name, Attempts: attempts, Err: last}
}

// runOne executes a single attempt, under the per-attempt deadline
// when one is configured.
func runOne[T any](ctx context.Context, p Policy, op func() (T, error)) (T, error) {
	if p.OpTimeout <= 0 {
		return op()
	}
	type result struct {
		v   T
		err error
	}
	done := make(chan result, 1)
	go func() {
		v, err := op()
		done <- result{v, err}
	}()
	t := time.NewTimer(p.OpTimeout)
	defer t.Stop()
	var cancel <-chan struct{}
	if ctx != nil {
		cancel = ctx.Done()
	}
	var zero T
	select {
	case r := <-done:
		return r.v, r.err
	case <-t.C:
		return zero, ErrOpTimeout
	case <-cancel:
		return zero, ctx.Err()
	}
}
