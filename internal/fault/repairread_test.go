package fault

import (
	"bytes"
	"context"
	"testing"
	"time"

	"ppm/internal/codes"
	"ppm/internal/stripe"
)

// TestReadSectorsMinimalRead: a clean degraded read of one lost LRC
// block fetches only its local group — far below the full stripe.
func TestReadSectorsMinimalRead(t *testing.T) {
	lrc, err := codes.NewLRC(12, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	const sector = 64
	ms, origs, sums := encodeToStore(t, lrc, 2, sector, 41)
	ms.Lose(3) // the block we will degraded-read

	h := &Healer{Code: lrc, Store: ms, Sums: sums,
		Policy: Policy{MaxAttempts: 2, BaseDelay: time.Microsecond}}
	st, err := stripe.New(lrc.NumStrips(), lrc.NumRows(), sector)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.ReadSectors(context.Background(), 0, st, []int{3}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(st.Sector(3), origs[0].Sector(3)) {
		t.Fatal("degraded read returned wrong bytes")
	}
	// Minimal read: the 6 local-group survivors only (the lost strip's
	// read failure does not tick StripsRead).
	if h.Stats.StripsRead != 6 {
		t.Fatalf("StripsRead = %d, want 6 (local group)", h.Stats.StripsRead)
	}
	if h.Stats.Replans != 1 {
		t.Fatalf("Replans = %d, want 1 (lost strip discovered on first read)", h.Stats.Replans)
	}
}

// TestReadSectorsCorruptSurvivorFallsBack: the satellite chaos case —
// a degraded sector read whose minimal survivor set contains a
// silently corrupted strip must fall back to a wider survivor set and
// still return byte-identical data.
func TestReadSectorsCorruptSurvivorFallsBack(t *testing.T) {
	lrc, err := codes.NewLRC(12, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	const sector = 64
	ms, origs, sums := encodeToStore(t, lrc, 2, sector, 43)
	ms.Lose(3) // block 3 unreadable: the degraded-read target

	// Silently corrupt survivor 1 — a member of block 3's local group,
	// so the minimal plan reads it and the checksum catches it.
	sched := NewSchedule(5)
	sched.Add(Event{Stripe: 0, Disk: 1, Kind: BitFlip, Count: 1})
	fs := NewFaultyStore(ms, sched)

	var lines int
	h := &Healer{Code: lrc, Store: fs, Sums: sums,
		Policy: Policy{MaxAttempts: 2, BaseDelay: time.Microsecond},
		Logf:   func(string, ...any) { lines++ }}
	st, err := stripe.New(lrc.NumStrips(), lrc.NumRows(), sector)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.ReadSectors(context.Background(), 0, st, []int{3}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(st.Sector(3), origs[0].Sector(3)) {
		t.Fatal("degraded read with corrupt survivor returned wrong bytes")
	}
	if h.Stats.CorruptSectors != 1 {
		t.Fatalf("CorruptSectors = %d, want 1", h.Stats.CorruptSectors)
	}
	// At least two replans: the unreadable target, then the corrupt
	// survivor widening the set to the global parities.
	if h.Stats.Replans < 2 {
		t.Fatalf("Replans = %d, want >= 2 (fallback to wider survivor set)", h.Stats.Replans)
	}
	// Wider than the local group, but still not the whole array.
	if h.Stats.StripsRead <= 6 || h.Stats.StripsRead >= int64(lrc.NumStrips()) {
		t.Fatalf("StripsRead = %d, want in (6, %d)", h.Stats.StripsRead, lrc.NumStrips())
	}
	if lines == 0 {
		t.Fatal("fallback produced no degraded-read log lines")
	}
}

// TestReadSectorsUnrecoverable: damage beyond the code's tolerance is
// an error, not garbage.
func TestReadSectorsUnrecoverable(t *testing.T) {
	rs, err := codes.NewRS(6, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	ms, _, sums := encodeToStore(t, rs, 1, 64, 47)
	ms.Lose(0)
	ms.Lose(1)
	ms.Lose(2)
	h := &Healer{Code: rs, Store: ms, Sums: sums,
		Policy: Policy{MaxAttempts: 2, BaseDelay: time.Microsecond}}
	st, _ := stripe.New(rs.NumStrips(), rs.NumRows(), 64)
	if err := h.ReadSectors(context.Background(), 0, st, []int{0}); err == nil {
		t.Fatal("unrecoverable degraded read reported success")
	}
}

// TestReadSectorsLiveSector: reading a healthy sector fetches just its
// strip — no plan, no decode.
func TestReadSectorsLiveSector(t *testing.T) {
	lrc, err := codes.NewLRC(12, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	ms, origs, sums := encodeToStore(t, lrc, 1, 64, 53)
	h := &Healer{Code: lrc, Store: ms, Sums: sums,
		Policy: Policy{MaxAttempts: 2, BaseDelay: time.Microsecond}}
	st, _ := stripe.New(lrc.NumStrips(), lrc.NumRows(), 64)
	if err := h.ReadSectors(context.Background(), 0, st, []int{5}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(st.Sector(5), origs[0].Sector(5)) {
		t.Fatal("live sector read returned wrong bytes")
	}
	if h.Stats.StripsRead != 1 {
		t.Fatalf("StripsRead = %d, want 1", h.Stats.StripsRead)
	}
	if h.Stats.Replans != 0 {
		t.Fatalf("Replans = %d, want 0", h.Stats.Replans)
	}
}
