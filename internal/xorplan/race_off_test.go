//go:build !race

package xorplan

// raceEnabled reports whether the race detector instruments this build.
// Allocation-count assertions are skipped under -race: the detector
// defeats sync.Pool reuse by design, so pooled paths report spurious
// allocations there.
const raceEnabled = false
