package xorplan

import (
	"encoding/binary"

	"ppm/internal/gf"
)

// SWAR "xtimes" passes: dst = x ⊗ src lane-wise over a region in the
// native little-endian word-interleaved layout. Each pass shifts every
// w-bit lane left by one and reduces lanes that overflow by the field
// polynomial — eight lanes (w=8), four (w=16) or two (w=32) per 64-bit
// word. The mask-multiply trick stays in-lane because the reduced
// polynomial (0x1D, 0x100B, 0x400007) times a lane's 1-bit never
// carries across the lane boundary.
//
// dst and src must be the same length, a multiple of w/8 bytes; exact
// aliasing (dst == src) is allowed — each word is read before it is
// written — which is how chains run in place.

// xtimesRegion dispatches on word width.
//
//ppm:hotpath
func xtimesRegion(w int, dst, src []byte) {
	switch w {
	case 8:
		xtimes8(dst, src)
	case 16:
		xtimes16(dst, src)
	default:
		xtimes32(dst, src)
	}
}

// xtimes8 reduces by x^8 + x^4 + x^3 + x^2 + 1 (0x11D).
//
//ppm:hotpath
func xtimes8(dst, src []byte) {
	n := len(dst)
	i := 0
	if m := n &^ 63; m > 0 && vecLevel >= gf.VecAVX2 {
		xtimes8AVX2(&dst[0], &src[0], m)
		i = m
	}
	for ; i+8 <= n; i += 8 {
		v := binary.LittleEndian.Uint64(src[i:])
		hi := v & 0x8080808080808080
		v = ((v ^ hi) << 1) ^ ((hi >> 7) * 0x1D)
		binary.LittleEndian.PutUint64(dst[i:], v)
	}
	for ; i < n; i++ {
		b := src[i]
		d := b << 1
		if b&0x80 != 0 {
			d ^= 0x1D
		}
		dst[i] = d
	}
}

// xtimes16 reduces by x^16 + x^12 + x^3 + x + 1 (0x1100B).
//
//ppm:hotpath
func xtimes16(dst, src []byte) {
	n := len(dst)
	i := 0
	if m := n &^ 63; m > 0 && vecLevel >= gf.VecAVX2 {
		xtimes16AVX2(&dst[0], &src[0], m)
		i = m
	}
	for ; i+8 <= n; i += 8 {
		v := binary.LittleEndian.Uint64(src[i:])
		hi := v & 0x8000800080008000
		v = ((v ^ hi) << 1) ^ ((hi >> 15) * 0x100B)
		binary.LittleEndian.PutUint64(dst[i:], v)
	}
	for ; i < n; i += 2 {
		b := binary.LittleEndian.Uint16(src[i:])
		d := b << 1
		if b&0x8000 != 0 {
			d ^= 0x100B
		}
		binary.LittleEndian.PutUint16(dst[i:], d)
	}
}

// xtimes32 reduces by x^32 + x^22 + x^2 + x + 1 (poly32low 0x00400007).
//
//ppm:hotpath
func xtimes32(dst, src []byte) {
	n := len(dst)
	i := 0
	if m := n &^ 63; m > 0 && vecLevel >= gf.VecAVX2 {
		xtimes32AVX2(&dst[0], &src[0], m)
		i = m
	}
	for ; i+8 <= n; i += 8 {
		v := binary.LittleEndian.Uint64(src[i:])
		hi := v & 0x8000000080000000
		v = ((v ^ hi) << 1) ^ ((hi >> 31) * 0x400007)
		binary.LittleEndian.PutUint64(dst[i:], v)
	}
	for ; i < n; i += 4 {
		b := binary.LittleEndian.Uint32(src[i:])
		d := b << 1
		if b&0x80000000 != 0 {
			d ^= 0x400007
		}
		binary.LittleEndian.PutUint32(dst[i:], d)
	}
}
