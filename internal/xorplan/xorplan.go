// Package xorplan compiles GF(2^w) coefficient matrices into scheduled
// XOR programs and executes them with loop-fused, vectorized XOR
// kernels — the portable backend that closes the gap to the GFNI
// affine kernels on hardware without GF2P8AFFINEQB.
//
// The lowering is the polynomial-ring transform of Detchart/Lacan
// (arXiv:1701.07731): multiplication by a constant a is the XOR, over
// the set bits k of a, of x^k ⊗ v — and x^k ⊗ v is k chained
// "xtimes" passes (shift each w-bit lane left by one, reduce by the
// field polynomial), a pure SWAR sweep over the region. Every output
// row therefore becomes a set of derived sources D(j,k) = x^k ⊗ in[j],
// and the whole matrix application a pure XOR program over the native
// word-interleaved layout — byte-identical with the table and affine
// paths, unlike the bit-packetised bitmatrix back end.
//
// The program is then optimised exactly as the bitmatrix schedule pass
// does it — bitmatrix.ScheduleSets runs common-subexpression
// extraction over shared source pairs and Prim derivative scheduling
// over the output rows (the program-optimization view of XOR codes,
// Uezato arXiv:2108.02692) — and lowered further for execution:
//
//   - register allocation: derived sources and CSE temps get arena
//     slots by linear-scan liveness, so the live working set is the
//     maximum concurrently-live temps, not the total;
//   - cache-aware tiling: one run sweeps the byte range in tiles sized
//     so (slots × tile) fits the arena budget (default 256 KiB),
//     capped at the kernel driver's 32 KiB so the two tilings compose;
//   - fused execution: output rows XOR up to five sources per
//     destination pass, through 64-bit word sweeps or AVX2/AVX-512
//     VPXOR kernels (PPM_NO_VEC escapes to portable).
//
// Execution state is pooled: steady-state RunOverwrite/RunAccumulate
// perform zero allocations.
package xorplan

import (
	"fmt"
	"sync/atomic"

	"ppm/internal/bitmatrix"
	"ppm/internal/gf"
	"ppm/internal/matrix"
)

// Arena budget: the compiled program's temp slots live in one pooled
// backing array of nslots × tile bytes; TileBytes sizes the tile so
// that working set respects the budget, between floor and cap.
const (
	// DefaultArenaBudget bounds the live temp working set of one run.
	DefaultArenaBudget = 256 << 10
	// minProgramTile floors the internal tile: below this, per-pass
	// dispatch overhead dominates the 64-byte-per-cycle XOR sweeps, so
	// slot-heavy programs spill past the budget toward L2 instead.
	minProgramTile = 2 << 10
	// maxProgramTile caps the internal tile at the kernel driver's
	// default 32 KiB cache-blocking tile, so a program running inside
	// one kernel tile never re-tiles coarser than its caller.
	maxProgramTile = 32 << 10
	// maxScheduledOnes / maxScheduledSet bound the scheduler input. The
	// CSE pass re-scans every surviving source pair each extraction
	// round — rounds × Σ|set|², close to cubic in the expansion size —
	// and the blowup shape is few rows with huge sets (a wide dense
	// whole-strategy G lowers to hundreds of sources per row, shared
	// mostly by coincidence). Past either bound the matrix lowers to
	// the flat program instead: compile stays O(ones) and execution
	// still runs the fused vector kernels. (Plans built only for cost
	// analysis compile the big whole-matrix G of every swept instance;
	// without this gate those compiles dominate the sweep.)
	maxScheduledOnes = 2048
	maxScheduledSet  = 256
)

var arenaBudget atomic.Int64

func init() { arenaBudget.Store(DefaultArenaBudget) }

// ArenaBudget returns the current temp-arena budget in bytes.
func ArenaBudget() int { return int(arenaBudget.Load()) }

// SetArenaBudget sets the temp-arena budget: the target byte size of
// one run's live temp working set. n <= 0 restores the default; the
// budget is clamped below at the minimum tile. It is a process-wide
// tuning knob owned by the autotuner — safe to adjust concurrently
// with running programs, which keep the tile they started with.
func SetArenaBudget(n int) {
	if n <= 0 {
		n = DefaultArenaBudget
	}
	if n < minProgramTile {
		n = minProgramTile
	}
	arenaBudget.Store(int64(n))
}

type instrKind uint8

const (
	// opXtimes: slot dst = x ⊗ source a (one reduction pass).
	opXtimes instrKind = iota
	// opPair: slot dst = source a ^ source b (a CSE temp).
	opPair
)

// instr is one temp-materialisation step. Source refs are arena slots
// when >= 0, and input region ^ref when negative.
type instr struct {
	kind instrKind
	dst  int32
	a, b int32
}

// outOp computes one output region: starting from a copy of output
// `from` (-1: from nothing), XOR in the sources.
type outOp struct {
	dst  int32
	from int32
	srcs []int32
}

// Program is a compiled, executable XOR program equivalent to one
// coefficient matrix. Immutable after Compile and safe for concurrent
// runs — all mutable state lives in pooled per-run arenas.
type Program struct {
	w          int
	rows, cols int
	nslots     int
	instrs     []instr
	outs       []outOp
	derivative bool
	xors       int // scheduled region-XOR count (bitmatrix metric)
	ones       int // unscheduled count: total set bits of the expansion
}

// Compile lowers m over f into an optimised XOR program. Supported
// word widths are 8, 16 and 32 — the fields internal/gf implements.
func Compile(f gf.Field, m *matrix.Matrix) (*Program, error) {
	w := f.W()
	switch w {
	case 8, 16, 32:
	default:
		return nil, fmt.Errorf("xorplan: unsupported word width %d", w)
	}
	rows, cols := m.Rows(), m.Cols()
	if rows == 0 || cols == 0 {
		return nil, fmt.Errorf("xorplan: empty %dx%d matrix", rows, cols)
	}
	inCount := cols * w
	sets := make([][]int, rows)
	ones := 0
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			a := m.At(i, j)
			for k := 0; k < w; k++ {
				if a>>uint(k)&1 == 1 {
					sets[i] = append(sets[i], j*w+k)
					ones++
				}
			}
		}
	}
	maxSet := 0
	for _, s := range sets {
		if len(s) > maxSet {
			maxSet = len(s)
		}
	}
	var sched *bitmatrix.SetSchedule
	if ones > maxScheduledOnes || maxSet > maxScheduledSet {
		sched = flatSets(sets, inCount, ones)
	} else {
		sched = bitmatrix.ScheduleSets(sets, inCount)
	}
	if err := sched.Validate(); err != nil {
		return nil, fmt.Errorf("xorplan: scheduler emitted an invalid program: %w", err)
	}
	return lower(w, rows, cols, sched, ones)
}

// flatSets builds the unoptimised schedule: no temps, no derivatives,
// every output row the plain XOR of its derived sources.
func flatSets(sets [][]int, inCount, ones int) *bitmatrix.SetSchedule {
	s := &bitmatrix.SetSchedule{Rows: len(sets), InCount: inCount, XORCount: ones}
	for i, set := range sets {
		s.Ops = append(s.Ops, bitmatrix.SetOp{Dst: i, From: -1, Srcs: set})
	}
	return s
}

// lower turns the abstract set schedule into the executable form:
// derived-source chains, temp defs and output ops in one linear order,
// with arena slots assigned by linear-scan liveness so the working set
// is the maximum concurrently-live temps.
func lower(w, rows, cols int, sched *bitmatrix.SetSchedule, ones int) (*Program, error) {
	inCount := cols * w
	total := inCount + len(sched.Temps)
	// slotBacked: derived sources x^k ⊗ in[j] with k >= 1, and CSE
	// temps. k == 0 sources are the raw input regions.
	slotBacked := func(id int) bool { return id >= inCount || id%w != 0 }

	// Derived-source demand: chains must be materialised up to the
	// highest k referenced per column (lower ks are the chain steps).
	maxK := make([]int, cols)
	note := func(id int) {
		if id < inCount {
			if j, k := id/w, id%w; k > maxK[j] {
				maxK[j] = k
			}
		}
	}
	for _, def := range sched.Temps {
		note(def[0])
		note(def[1])
	}
	for _, op := range sched.Ops {
		for _, s := range op.Srcs {
			note(s)
		}
	}

	// Abstract linear program: chains column by column, then CSE temps
	// in definition order, then output ops.
	type absInstr struct {
		kind instrKind
		dst  int
		a, b int
	}
	var abs []absInstr
	for j := 0; j < cols; j++ {
		for k := 1; k <= maxK[j]; k++ {
			abs = append(abs, absInstr{opXtimes, j*w + k, j*w + k - 1, 0})
		}
	}
	for t, def := range sched.Temps {
		abs = append(abs, absInstr{opPair, inCount + t, def[0], def[1]})
	}
	nInstr := len(abs)
	nPos := nInstr + len(sched.Ops)

	// Liveness over the linear order: defPos at definition, lastUse the
	// final reference (a chain step's next xtimes, a temp def, or an
	// output op).
	defPos := make([]int, total)
	lastUse := make([]int, total)
	for i := range defPos {
		defPos[i] = -1
		lastUse[i] = -1
	}
	for p, ai := range abs {
		defPos[ai.dst] = p
		lastUse[ai.dst] = p
	}
	use := func(id, p int) {
		if slotBacked(id) && p > lastUse[id] {
			lastUse[id] = p
		}
	}
	for p, ai := range abs {
		use(ai.a, p)
		if ai.kind == opPair {
			use(ai.b, p)
		}
	}
	for oi, op := range sched.Ops {
		for _, s := range op.Srcs {
			use(s, nInstr+oi)
		}
	}
	dieAt := make([][]int, nPos)
	for _, ai := range abs { // abs order keeps slot assignment deterministic
		if p := lastUse[ai.dst]; p >= 0 {
			dieAt[p] = append(dieAt[p], ai.dst)
		}
	}

	// Linear-scan slot assignment. A source dying at a definition is
	// released *before* the destination slot is drawn, so the def may
	// reuse it in place — the xtimes and pair kernels read each word
	// before writing it, which makes exact-alias reuse safe.
	slotOf := make([]int32, total)
	for i := range slotOf {
		slotOf[i] = -1
	}
	ref := func(id int) int32 {
		if !slotBacked(id) {
			return ^int32(id / w)
		}
		return slotOf[id]
	}
	p := &Program{w: w, rows: rows, cols: cols, xors: sched.XORCount, ones: ones}
	var free []int32
	for pos, ai := range abs {
		a, b := ref(ai.a), ref(ai.b)
		for _, id := range dieAt[pos] {
			if s := slotOf[id]; s >= 0 {
				free = append(free, s)
			}
		}
		var s int32
		if n := len(free); n > 0 {
			s, free = free[n-1], free[:n-1]
		} else {
			s = int32(p.nslots)
			p.nslots++
		}
		slotOf[ai.dst] = s
		if ai.kind == opXtimes {
			p.instrs = append(p.instrs, instr{kind: opXtimes, dst: s, a: a})
		} else {
			p.instrs = append(p.instrs, instr{kind: opPair, dst: s, a: a, b: b})
		}
	}
	for _, op := range sched.Ops {
		oo := outOp{dst: int32(op.Dst), from: int32(op.From)}
		for _, sid := range op.Srcs {
			oo.srcs = append(oo.srcs, ref(sid))
		}
		p.outs = append(p.outs, oo)
		if op.From >= 0 {
			p.derivative = true
		}
	}
	if err := p.validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// validate bounds-checks every reference the executor will follow
// against the arenas it will index — temp slots against nslots, input
// refs against cols, output rows against rows — and re-checks the
// write-before-read discipline on outputs. Compile refuses to return a
// program that fails it, so the hot run loop carries no checks.
func (p *Program) validate() error {
	checkSrc := func(ref int32, where string) error {
		if ref >= 0 {
			if int(ref) >= p.nslots {
				return fmt.Errorf("xorplan: %s references temp slot %d of %d", where, ref, p.nslots)
			}
			return nil
		}
		if j := int(^ref); j >= p.cols {
			return fmt.Errorf("xorplan: %s references input %d of %d", where, j, p.cols)
		}
		return nil
	}
	for i, ins := range p.instrs {
		if ins.dst < 0 || int(ins.dst) >= p.nslots {
			return fmt.Errorf("xorplan: instr %d writes temp slot %d of %d", i, ins.dst, p.nslots)
		}
		if err := checkSrc(ins.a, "instr"); err != nil {
			return err
		}
		if ins.kind == opPair {
			if err := checkSrc(ins.b, "instr"); err != nil {
				return err
			}
		}
	}
	written := make([]bool, p.rows)
	for i := range p.outs {
		op := &p.outs[i]
		if op.dst < 0 || int(op.dst) >= p.rows {
			return fmt.Errorf("xorplan: out op %d writes row %d of %d", i, op.dst, p.rows)
		}
		if written[op.dst] {
			return fmt.Errorf("xorplan: out op %d writes row %d twice", i, op.dst)
		}
		if op.from != -1 {
			if op.from < 0 || int(op.from) >= p.rows || !written[op.from] {
				return fmt.Errorf("xorplan: out op %d derives from row %d before it is written", i, op.from)
			}
		}
		for _, s := range op.srcs {
			if err := checkSrc(s, "out op"); err != nil {
				return err
			}
		}
		written[op.dst] = true
	}
	for r, ok := range written {
		if !ok {
			return fmt.Errorf("xorplan: row %d is never written", r)
		}
	}
	return nil
}

// W returns the field word width in bits.
func (p *Program) W() int { return p.w }

// Rows returns the output region count.
func (p *Program) Rows() int { return p.rows }

// Cols returns the input region count.
func (p *Program) Cols() int { return p.cols }

// Slots returns the temp-arena slot count — the maximum
// concurrently-live derived sources and CSE temps of one run.
func (p *Program) Slots() int { return p.nslots }

// HasDerivative reports whether any output derives from another: such
// programs only run in overwrite mode.
func (p *Program) HasDerivative() bool { return p.derivative }

// XORs returns the scheduled region-XOR count of one run, in the
// bitmatrix schedule metric — compare against Ones.
func (p *Program) XORs() int { return p.xors }

// Ones returns the unscheduled count: the total set bits of the
// matrix's polynomial expansion, what a naive lowering would XOR.
func (p *Program) Ones() int { return p.ones }

// TileBytes returns the byte-range tile one run sweeps per pass: the
// arena budget divided across the temp slots, clamped to
// [minProgramTile, maxProgramTile] and rounded to a multiple of 8 so
// every word width tiles exactly.
func (p *Program) TileBytes() int {
	n := p.nslots
	if n < 1 {
		n = 1
	}
	t := ArenaBudget() / n
	if t > maxProgramTile {
		t = maxProgramTile
	}
	if t < minProgramTile {
		t = minProgramTile
	}
	return t &^ 7
}
