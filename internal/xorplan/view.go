package xorplan

// View is an exported, deep-copied snapshot of a compiled Program — the
// inspection surface the symbolic plan verifier (internal/planverify)
// walks to prove a program equal to its source coefficient matrix. The
// encoding matches the executor's: source references are arena slots
// when >= 0 and input regions ^ref when negative, instructions run in
// order materialising the temp arena, then the output ops run in order.
//
// A View shares nothing with the Program it was taken from, so callers
// (mutation harnesses included) may modify it freely.
type View struct {
	// W is the field word width in bits; Rows/Cols the output/input
	// region counts; Slots the temp-arena slot count.
	W, Rows, Cols, Slots int
	// XORs is the scheduled region-XOR metric (Program.XORs), Ones the
	// unscheduled expansion size (Program.Ones).
	XORs, Ones int
	Instrs     []ViewInstr
	Outs       []ViewOut
}

// ViewInstr is one temp-materialisation step: slot Dst = x ⊗ A when
// Xtimes, else slot Dst = A ^ B. A and B are slots when >= 0 and input
// regions ^ref when negative; B is unused for xtimes steps.
type ViewInstr struct {
	Xtimes bool
	Dst    int32
	A, B   int32
}

// ViewOut computes one output region: starting from a copy of output
// row From (-1: from nothing), XOR in the Srcs (slot/input references).
type ViewOut struct {
	Dst  int32
	From int32
	Srcs []int32
}

// View returns a deep snapshot of the program.
func (p *Program) View() View {
	v := View{
		W:      p.w,
		Rows:   p.rows,
		Cols:   p.cols,
		Slots:  p.nslots,
		XORs:   p.xors,
		Ones:   p.ones,
		Instrs: make([]ViewInstr, len(p.instrs)),
		Outs:   make([]ViewOut, len(p.outs)),
	}
	for i, ins := range p.instrs {
		v.Instrs[i] = ViewInstr{Xtimes: ins.kind == opXtimes, Dst: ins.dst, A: ins.a, B: ins.b}
	}
	for i := range p.outs {
		op := &p.outs[i]
		v.Outs[i] = ViewOut{Dst: op.dst, From: op.from, Srcs: append([]int32(nil), op.srcs...)}
	}
	return v
}
