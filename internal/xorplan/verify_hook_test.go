package xorplan_test

// External-package hooks binding the compile cache to the symbolic
// plan verifier (internal/planverify imports xorplan, so these live in
// xorplan_test to keep the import graph acyclic). They prove the
// PPM_VERIFY_PLANS gate end to end: verified admission on cache miss,
// ErrVerify refusal without cache pollution, and clean hits afterwards.

import (
	"errors"
	"math/rand"
	"testing"

	"ppm/internal/gf"
	"ppm/internal/matrix"
	"ppm/internal/planverify"
	"ppm/internal/xorplan"
)

// restoreRealVerifier reinstalls the production verifier hook after a
// test swapped in a canned one.
func restoreRealVerifier() {
	xorplan.RegisterVerifier(func(f gf.Field, m *matrix.Matrix, p *xorplan.Program) error {
		return planverify.Error(planverify.VerifyProgram(f, m, p))
	})
}

func randomVerifyMatrix(rng *rand.Rand, f gf.Field, rows, cols int) *matrix.Matrix {
	mask := uint32(1)<<uint(f.W()) - 1
	m := matrix.New(f, rows, cols)
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			m.Set(i, j, rng.Uint32()&mask)
		}
	}
	return m
}

// TestVerifyGateAdmitsProvenPrograms turns the gate on and compiles a
// spread of fresh matrices: every one must be admitted (the verifier
// proves them), and every emitted program must re-verify directly.
func TestVerifyGateAdmitsProvenPrograms(t *testing.T) {
	defer xorplan.SetVerifyPlans(xorplan.SetVerifyPlans(true))
	rng := rand.New(rand.NewSource(11))
	for _, w := range []int{8, 16, 32} {
		f, err := gf.ForWord(w)
		if err != nil {
			t.Fatal(err)
		}
		for trial := 0; trial < 4; trial++ {
			m := randomVerifyMatrix(rng, f, 2+rng.Intn(4), 2+rng.Intn(6))
			prog, err := xorplan.CompileCached(f, m)
			if err != nil {
				t.Fatalf("w=%d: gated compile failed: %v", w, err)
			}
			if fs := planverify.VerifyProgram(f, m, prog); len(fs) != 0 {
				t.Fatalf("w=%d: admitted program fails direct verification: %v", w, fs)
			}
		}
	}
}

// TestVerifyGateRefusesRejectedPrograms swaps in an always-failing
// verifier and checks the miss path surfaces ErrVerify without
// admitting the program — after the real verifier returns, the same
// matrix compiles cleanly, proving the reject left no cache entry.
func TestVerifyGateRefusesRejectedPrograms(t *testing.T) {
	defer xorplan.SetVerifyPlans(xorplan.SetVerifyPlans(true))
	defer restoreRealVerifier()

	f, err := gf.ForWord(8)
	if err != nil {
		t.Fatal(err)
	}
	m := randomVerifyMatrix(rand.New(rand.NewSource(23)), f, 3, 7)

	boom := errors.New("canned rejection")
	xorplan.RegisterVerifier(func(gf.Field, *matrix.Matrix, *xorplan.Program) error { return boom })
	if _, err := xorplan.CompileCached(f, m); !errors.Is(err, xorplan.ErrVerify) {
		t.Fatalf("gated compile returned %v, want ErrVerify", err)
	}

	restoreRealVerifier()
	if _, err := xorplan.CompileCached(f, m); err != nil {
		t.Fatalf("recompile after rejection failed: %v (rejected program leaked into the cache?)", err)
	}
}

// TestVerifyGateOffSkipsVerifier pins the default: with the gate off,
// a rejecting verifier is never consulted.
func TestVerifyGateOffSkipsVerifier(t *testing.T) {
	defer xorplan.SetVerifyPlans(xorplan.SetVerifyPlans(false))
	defer restoreRealVerifier()
	xorplan.RegisterVerifier(func(gf.Field, *matrix.Matrix, *xorplan.Program) error {
		return errors.New("must not be called")
	})
	f, err := gf.ForWord(16)
	if err != nil {
		t.Fatal(err)
	}
	m := randomVerifyMatrix(rand.New(rand.NewSource(31)), f, 2, 5)
	if _, err := xorplan.CompileCached(f, m); err != nil {
		t.Fatalf("ungated compile consulted the verifier: %v", err)
	}
}
