package xorplan

import (
	"bytes"
	"encoding/binary"
	"testing"

	"ppm/internal/gf"
	"ppm/internal/matrix"
)

// FuzzProgramVsScalar drives arbitrary matrices over all three fields
// through Compile + RunOverwrite/RunAccumulate and cross-checks every
// output word against scalar field arithmetic (gf.Field.Mul — fully
// independent of the table, affine and XOR region kernels). The fuzzer
// owns the whole backend: polynomial lowering, CSE/Prim scheduling,
// slot allocation, tiling and the fused XOR kernels all sit on the
// checked path. (Runs its seed corpus under plain `go test`; explore
// with `go test -fuzz FuzzProgramVsScalar`.)
func FuzzProgramVsScalar(f *testing.F) {
	f.Add(uint8(0), uint8(0), uint8(0), uint8(0), []byte("\x01\x00\x00\x00abcdefgh"))
	f.Add(uint8(1), uint8(3), uint8(2), uint8(7), bytes.Repeat([]byte{0x35, 0xA7, 2, 0xFF}, 32))
	f.Add(uint8(2), uint8(2), uint8(4), uint8(255), bytes.Repeat([]byte{9, 0, 0x80, 1, 0x55}, 40))

	fields := []gf.Field{gf.GF8, gf.GF16, gf.GF32}
	f.Fuzz(func(t *testing.T, fieldSel, r, c, flags uint8, raw []byte) {
		fld := fields[int(fieldSel)%len(fields)]
		rows := int(r%5) + 1
		cols := int(c%5) + 1
		wb := fld.WordBytes()
		coefBytes := rows * cols * 4
		if len(raw) < coefBytes+cols*wb {
			return
		}
		mask := uint32((fld.Order() - 1) & 0xFFFFFFFF)
		m := matrix.New(fld, rows, cols)
		for i := 0; i < rows; i++ {
			for j := 0; j < cols; j++ {
				m.Set(i, j, binary.LittleEndian.Uint32(raw[4*(i*cols+j):])&mask)
			}
		}
		data := raw[coefBytes:]
		words := len(data) / (cols * wb)
		if words > 1024 {
			words = 1024
		}
		size := words * wb
		in := make([][]byte, cols)
		for j := range in {
			in[j] = data[j*size : (j+1)*size]
		}

		prog, err := Compile(fld, m)
		if err != nil {
			t.Fatalf("Compile: %v", err)
		}
		if prog.XORs() > prog.Ones() {
			t.Fatalf("scheduled %d XORs, naive lowering needs %d", prog.XORs(), prog.Ones())
		}

		word := func(region []byte, w int) uint32 {
			var v uint32
			for b := 0; b < wb; b++ {
				v |= uint32(region[w*wb+b]) << (8 * b)
			}
			return v
		}
		want := make([][]uint32, rows)
		for i := range want {
			want[i] = make([]uint32, words)
			for j := 0; j < cols; j++ {
				a := m.At(i, j)
				if a == 0 {
					continue
				}
				for w := 0; w < words; w++ {
					want[i][w] ^= fld.Mul(a, word(in[j], w))
				}
			}
		}
		check := func(mode string, out [][]byte, base [][]byte, loWord int) {
			for i := range out {
				for w := 0; w < words; w++ {
					got := word(out[i], w)
					exp := want[i][w]
					if w < loWord {
						exp = word(base[i], w) // outside the run window: untouched
					} else if base != nil && mode == "accumulate" {
						exp ^= word(base[i], w)
					}
					if got != exp {
						t.Fatalf("%s: row %d word %d = %#x, want %#x (gf%d %dx%d)",
							mode, i, w, got, exp, fld.W(), rows, cols)
					}
				}
			}
		}

		stale := byte(flags | 1)
		out := make([][]byte, rows)
		for i := range out {
			out[i] = bytes.Repeat([]byte{stale}, size)
		}
		prog.RunOverwrite(in, out, 0, size)
		check("overwrite", out, nil, 0)

		// Partial window: [loWord, words), bytes below left stale.
		loWord := int(flags) % words
		base := make([][]byte, rows)
		outW := make([][]byte, rows)
		for i := range outW {
			base[i] = bytes.Repeat([]byte{stale ^ 0xFF}, size)
			outW[i] = append([]byte(nil), base[i]...)
		}
		prog.RunOverwrite(in, outW, loWord*wb, size)
		check("window", outW, base, loWord)

		if !prog.HasDerivative() {
			acc := make([][]byte, rows)
			for i := range acc {
				acc[i] = append([]byte(nil), base[i]...)
			}
			prog.RunAccumulate(in, acc, 0, size)
			check("accumulate", acc, base, 0)
		}
	})
}
