//go:build amd64

package xorplan

// Vector XOR kernels, implemented in xor_amd64.s. For every kernel n
// must be positive and a multiple of 64; callers peel the sub-64-byte
// tail onto the portable word sweeps. dst may exactly alias any
// source: each 64-byte block's sources are loaded before the block is
// stored. The AVX-512 forms need F+BW (one ZMM per block); the AVX2
// forms need only AVX2 (two YMM per block). Both end in VZEROUPPER so
// mixed SSE code pays no transition penalty.

func xor2AVX2(dst, a, b *byte, n int)
func xor3AVX2(dst, a, b, c *byte, n int)
func xor4AVX2(dst, a, b, c, d *byte, n int)
func xor5AVX2(dst, a, b, c, d, e *byte, n int)

// Vectorized xtimes passes (xtimes_amd64.s): dst = x ⊗ src lane-wise
// by sign-mask doubling, same n-multiple-of-64 and exact-alias
// contract. AVX2 only — one form serves both vector levels.
func xtimes8AVX2(dst, src *byte, n int)
func xtimes16AVX2(dst, src *byte, n int)
func xtimes32AVX2(dst, src *byte, n int)

func xor2AVX512(dst, a, b *byte, n int)
func xor3AVX512(dst, a, b, c *byte, n int)
func xor4AVX512(dst, a, b, c, d *byte, n int)
func xor5AVX512(dst, a, b, c, d, e *byte, n int)
