package xorplan

import (
	"container/list"
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"sync"
	"sync/atomic"

	"ppm/internal/gf"
	"ppm/internal/matrix"
)

// DefaultCacheSize bounds the compiled-program LRU. Programs are a few
// KiB each; 256 covers every matrix a realistic code family compiles
// (per-stripe decode matrices included) without unbounded growth.
const DefaultCacheSize = 256

// ErrVerify wraps a plan-verification rejection: the compiled program
// failed the registered symbolic verifier and was not admitted to the
// cache. Callers that silently fall back on other compile failures
// (kernel.Compile) must NOT swallow this one — a rejected program means
// the compiler emitted provably wrong code.
var ErrVerify = errors.New("xorplan: compiled program failed plan verification")

// verifier is the registered plan verifier (a func(gf.Field,
// *matrix.Matrix, *Program) error), set by internal/planverify's init.
// The hook indirection exists because planverify must import xorplan to
// walk programs; registration keeps the dependency one-way, the same
// RegisterAutoTuner idiom pipeline/tune use.
var verifier atomic.Value

type verifierFn func(gf.Field, *matrix.Matrix, *Program) error

// RegisterVerifier installs the symbolic plan verifier consulted when
// plan verification is enabled. fn must be safe for concurrent use.
func RegisterVerifier(fn func(gf.Field, *matrix.Matrix, *Program) error) {
	verifier.Store(verifierFn(fn))
}

// verifyPlans gates compile-time verification: off by default (the
// verifier costs a symbolic walk per compile), enabled process-wide by
// PPM_VERIFY_PLANS=1 or SetVerifyPlans. Cache hits never re-verify, so
// the gate's overhead is confined to cache misses.
var verifyPlans atomic.Bool

func init() {
	if os.Getenv("PPM_VERIFY_PLANS") == "1" {
		verifyPlans.Store(true)
	}
}

// SetVerifyPlans enables or disables compile-time plan verification and
// returns the previous setting (restore idiom for tests).
func SetVerifyPlans(on bool) (prev bool) { return verifyPlans.Swap(on) }

// VerifyPlansEnabled reports whether compile-time verification is on.
func VerifyPlansEnabled() bool { return verifyPlans.Load() }

// verifyCompiled runs the registered verifier against a freshly
// compiled program when the gate is on. A nil return admits the
// program; ErrVerify-wrapped errors refuse it.
func verifyCompiled(f gf.Field, m *matrix.Matrix, p *Program) error {
	if !verifyPlans.Load() {
		return nil
	}
	fn, _ := verifier.Load().(verifierFn)
	if fn == nil {
		return nil
	}
	if err := fn(f, m, p); err != nil {
		return fmt.Errorf("%w: %v", ErrVerify, err)
	}
	return nil
}

// The cache key is the exact encoded matrix — width, dimensions and
// every coefficient — not a digest, so distinct matrices can never
// collide into the wrong program.
func cacheKey(f gf.Field, m *matrix.Matrix) string {
	rows, cols := m.Rows(), m.Cols()
	buf := make([]byte, 0, 12+4*rows*cols)
	var u [4]byte
	put := func(v uint32) {
		binary.LittleEndian.PutUint32(u[:], v)
		buf = append(buf, u[:]...)
	}
	put(uint32(f.W()))
	put(uint32(rows))
	put(uint32(cols))
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			put(m.At(i, j))
		}
	}
	return string(buf)
}

type cacheEntry struct {
	key  string
	prog *Program
}

var progCache = struct {
	mu           sync.Mutex
	byKey        map[string]*list.Element
	order        *list.List // front = most recently used
	cap          int
	hits, misses atomic.Int64
}{
	byKey: make(map[string]*list.Element),
	order: list.New(),
	cap:   DefaultCacheSize,
}

// CompileCached returns the compiled program for (f, m), memoizing
// compilations in a process-wide LRU. The returned Program is shared
// and immutable; concurrent callers may race to compile the same key,
// in which case one result wins and the others are dropped.
func CompileCached(f gf.Field, m *matrix.Matrix) (*Program, error) {
	key := cacheKey(f, m)
	c := &progCache
	c.mu.Lock()
	if el, ok := c.byKey[key]; ok {
		c.order.MoveToFront(el)
		prog := el.Value.(*cacheEntry).prog
		c.mu.Unlock()
		c.hits.Add(1)
		return prog, nil
	}
	c.mu.Unlock()
	c.misses.Add(1)
	prog, err := Compile(f, m)
	if err != nil {
		return nil, err
	}
	// Opt-in gate (PPM_VERIFY_PLANS=1): prove the program equals its
	// matrix before it is admitted to the LRU — misses pay the symbolic
	// walk, hits stay untouched.
	if err := verifyCompiled(f, m, prog); err != nil {
		return nil, err
	}
	c.mu.Lock()
	if el, ok := c.byKey[key]; ok { // lost a compile race: keep the incumbent
		c.order.MoveToFront(el)
		prog = el.Value.(*cacheEntry).prog
	} else {
		c.byKey[key] = c.order.PushFront(&cacheEntry{key: key, prog: prog})
		for c.order.Len() > c.cap {
			oldest := c.order.Back()
			c.order.Remove(oldest)
			delete(c.byKey, oldest.Value.(*cacheEntry).key)
		}
	}
	c.mu.Unlock()
	return prog, nil
}

// CacheStats returns the cumulative hit and miss counts of
// CompileCached since process start (or the last ResetCacheStats).
func CacheStats() (hits, misses int64) {
	return progCache.hits.Load(), progCache.misses.Load()
}

// SetCacheCapacity bounds the compiled-program LRU to n entries,
// evicting the least recently used programs if the cache already holds
// more, and returns the previous capacity. n <= 0 restores the
// default. A process serving many code instances from bounded memory
// (the daemon shape of ROADMAP item 1) sizes the cache here; tests use
// it to create eviction pressure without hundreds of compiles.
func SetCacheCapacity(n int) (prev int) {
	if n <= 0 {
		n = DefaultCacheSize
	}
	c := &progCache
	c.mu.Lock()
	prev = c.cap
	c.cap = n
	for c.order.Len() > c.cap {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.byKey, oldest.Value.(*cacheEntry).key)
	}
	c.mu.Unlock()
	return prev
}

// CacheLen reports the number of programs currently resident.
func CacheLen() int {
	c := &progCache
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// ResetCacheStats zeroes the hit/miss counters. Test seam — the cached
// programs themselves stay resident.
func ResetCacheStats() {
	progCache.hits.Store(0)
	progCache.misses.Store(0)
}
