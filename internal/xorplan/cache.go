package xorplan

import (
	"container/list"
	"encoding/binary"
	"sync"
	"sync/atomic"

	"ppm/internal/gf"
	"ppm/internal/matrix"
)

// DefaultCacheSize bounds the compiled-program LRU. Programs are a few
// KiB each; 256 covers every matrix a realistic code family compiles
// (per-stripe decode matrices included) without unbounded growth.
const DefaultCacheSize = 256

// The cache key is the exact encoded matrix — width, dimensions and
// every coefficient — not a digest, so distinct matrices can never
// collide into the wrong program.
func cacheKey(f gf.Field, m *matrix.Matrix) string {
	rows, cols := m.Rows(), m.Cols()
	buf := make([]byte, 0, 12+4*rows*cols)
	var u [4]byte
	put := func(v uint32) {
		binary.LittleEndian.PutUint32(u[:], v)
		buf = append(buf, u[:]...)
	}
	put(uint32(f.W()))
	put(uint32(rows))
	put(uint32(cols))
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			put(m.At(i, j))
		}
	}
	return string(buf)
}

type cacheEntry struct {
	key  string
	prog *Program
}

var progCache = struct {
	mu           sync.Mutex
	byKey        map[string]*list.Element
	order        *list.List // front = most recently used
	cap          int
	hits, misses atomic.Int64
}{
	byKey: make(map[string]*list.Element),
	order: list.New(),
	cap:   DefaultCacheSize,
}

// CompileCached returns the compiled program for (f, m), memoizing
// compilations in a process-wide LRU. The returned Program is shared
// and immutable; concurrent callers may race to compile the same key,
// in which case one result wins and the others are dropped.
func CompileCached(f gf.Field, m *matrix.Matrix) (*Program, error) {
	key := cacheKey(f, m)
	c := &progCache
	c.mu.Lock()
	if el, ok := c.byKey[key]; ok {
		c.order.MoveToFront(el)
		prog := el.Value.(*cacheEntry).prog
		c.mu.Unlock()
		c.hits.Add(1)
		return prog, nil
	}
	c.mu.Unlock()
	c.misses.Add(1)
	prog, err := Compile(f, m)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	if el, ok := c.byKey[key]; ok { // lost a compile race: keep the incumbent
		c.order.MoveToFront(el)
		prog = el.Value.(*cacheEntry).prog
	} else {
		c.byKey[key] = c.order.PushFront(&cacheEntry{key: key, prog: prog})
		for c.order.Len() > c.cap {
			oldest := c.order.Back()
			c.order.Remove(oldest)
			delete(c.byKey, oldest.Value.(*cacheEntry).key)
		}
	}
	c.mu.Unlock()
	return prog, nil
}

// CacheStats returns the cumulative hit and miss counts of
// CompileCached since process start (or the last ResetCacheStats).
func CacheStats() (hits, misses int64) {
	return progCache.hits.Load(), progCache.misses.Load()
}

// ResetCacheStats zeroes the hit/miss counters. Test seam — the cached
// programs themselves stay resident.
func ResetCacheStats() {
	progCache.hits.Store(0)
	progCache.misses.Store(0)
}
