package xorplan

import (
	"fmt"
	"sync"
	"testing"

	"ppm/internal/gf"
	"ppm/internal/matrix"
)

// cacheTestMatrix builds a matrix whose coefficients encode tag, so
// every test key is distinct from anything else the suite compiles.
func cacheTestMatrix(f gf.Field, tag, rows, cols int) *matrix.Matrix {
	mask := uint32(1)<<uint(f.W()) - 1
	m := matrix.New(f, rows, cols)
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			v := uint32(tag*131+i*17+j*5+1) & mask
			if v == 0 {
				v = 1
			}
			m.Set(i, j, v)
		}
	}
	return m
}

// TestCacheEviction pins the LRU discipline under capacity pressure:
// filling a capacity-3 cache with four distinct keys evicts exactly
// the least recently used one, a re-request of the evicted key misses
// and recompiles, and the counters account every call as hit or miss
// with no drift.
func TestCacheEviction(t *testing.T) {
	f, err := gf.ForWord(8)
	if err != nil {
		t.Fatal(err)
	}
	defer SetCacheCapacity(SetCacheCapacity(3))
	ResetCacheStats()

	ms := make([]*matrix.Matrix, 5)
	progs := make([]*Program, 5)
	for i := range ms {
		ms[i] = cacheTestMatrix(f, 9000+i, 2, 3)
	}

	// Fill to capacity: three cold misses.
	for i := 0; i < 3; i++ {
		p, err := CompileCached(f, ms[i])
		if err != nil {
			t.Fatal(err)
		}
		progs[i] = p
	}
	if CacheLen() != 3 {
		t.Fatalf("cache holds %d entries after 3 inserts at capacity 3", CacheLen())
	}

	// Touch 0 so 1 becomes the LRU victim, then insert 3 to evict it.
	if p, err := CompileCached(f, ms[0]); err != nil || p != progs[0] {
		t.Fatalf("re-request of resident key recompiled (err=%v)", err)
	}
	if _, err := CompileCached(f, ms[3]); err != nil {
		t.Fatal(err)
	}
	if CacheLen() != 3 {
		t.Fatalf("cache holds %d entries after eviction at capacity 3", CacheLen())
	}

	// 0 and 2 must still be resident (hits), 1 must have been evicted
	// (a fresh miss producing a fresh Program value).
	if p, err := CompileCached(f, ms[0]); err != nil || p != progs[0] {
		t.Fatalf("key 0 was evicted out of LRU order (err=%v)", err)
	}
	if p, err := CompileCached(f, ms[2]); err != nil || p != progs[2] {
		t.Fatalf("key 2 was evicted out of LRU order (err=%v)", err)
	}
	preHits, preMisses := CacheStats()
	p1b, err := CompileCached(f, ms[1])
	if err != nil {
		t.Fatal(err)
	}
	if p1b == progs[1] {
		t.Fatal("evicted key returned the original Program pointer without a recompile miss")
	}
	hits, misses := CacheStats()
	if hits != preHits || misses != preMisses+1 {
		t.Fatalf("evicted re-request moved counters to hits=%d misses=%d from hits=%d misses=%d (want one more miss)",
			hits, misses, preHits, preMisses)
	}

	// Counter conservation: every call so far was exactly one hit or
	// one miss.
	const calls = 8
	if hits+misses != calls {
		t.Fatalf("hits(%d)+misses(%d) = %d, want %d calls", hits, misses, hits+misses, calls)
	}
	if hits != 3 || misses != 5 {
		t.Fatalf("hits=%d misses=%d, want 3/5", hits, misses)
	}
}

// TestCacheCapacityShrinkEvicts pins SetCacheCapacity's down-sizing:
// shrinking below the resident count evicts oldest-first immediately.
func TestCacheCapacityShrinkEvicts(t *testing.T) {
	f, err := gf.ForWord(8)
	if err != nil {
		t.Fatal(err)
	}
	defer SetCacheCapacity(SetCacheCapacity(4))
	for i := 0; i < 4; i++ {
		if _, err := CompileCached(f, cacheTestMatrix(f, 9100+i, 2, 2)); err != nil {
			t.Fatal(err)
		}
	}
	if CacheLen() != 4 {
		t.Fatalf("cache holds %d entries, want 4", CacheLen())
	}
	SetCacheCapacity(2)
	if CacheLen() != 2 {
		t.Fatalf("cache holds %d entries after shrink to 2", CacheLen())
	}
	ResetCacheStats()
	// The two most recent keys survived the shrink.
	for i := 2; i < 4; i++ {
		if _, err := CompileCached(f, cacheTestMatrix(f, 9100+i, 2, 2)); err != nil {
			t.Fatal(err)
		}
	}
	if hits, misses := CacheStats(); hits != 2 || misses != 0 {
		t.Fatalf("post-shrink residents: hits=%d misses=%d, want 2/0", hits, misses)
	}
}

// TestCacheConcurrentCounters hammers one cold key plus per-goroutine
// keys from many goroutines (run with -race): afterwards every call is
// accounted exactly once and the shared key is resident exactly once.
func TestCacheConcurrentCounters(t *testing.T) {
	f, err := gf.ForWord(8)
	if err != nil {
		t.Fatal(err)
	}
	defer SetCacheCapacity(SetCacheCapacity(64))
	ResetCacheStats()

	shared := cacheTestMatrix(f, 9200, 3, 4)
	const workers = 8
	const perWorker = 4
	var wg sync.WaitGroup
	errs := make(chan error, workers*(perWorker+1))
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			if _, err := CompileCached(f, shared); err != nil {
				errs <- fmt.Errorf("shared: %w", err)
			}
			for i := 0; i < perWorker; i++ {
				if _, err := CompileCached(f, cacheTestMatrix(f, 9300+g*perWorker+i, 2, 2)); err != nil {
					errs <- fmt.Errorf("private: %w", err)
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	hits, misses := CacheStats()
	const calls = workers * (perWorker + 1)
	if hits+misses != calls {
		t.Fatalf("hits(%d)+misses(%d) = %d, want %d calls", hits, misses, hits+misses, calls)
	}
	// Racing compiles of the shared key may each count a miss (the
	// losers drop their program), but the private keys are all distinct
	// misses, and the shared key contributes at least one.
	if misses < workers*perWorker+1 {
		t.Fatalf("misses=%d below the %d distinct keys", misses, workers*perWorker+1)
	}
}
