package xorplan

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"ppm/internal/gf"
	"ppm/internal/matrix"
)

var testFields = []gf.Field{gf.GF8, gf.GF16, gf.GF32}

func randRegions(rng *rand.Rand, count, size int) [][]byte {
	regions := make([][]byte, count)
	for i := range regions {
		regions[i] = make([]byte, size)
		rng.Read(regions[i])
	}
	return regions
}

func randMatrix(rng *rand.Rand, f gf.Field, rows, cols int) *matrix.Matrix {
	m := matrix.New(f, rows, cols)
	mask := uint32((f.Order() - 1) & 0xFFFFFFFF)
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			m.Set(i, j, rng.Uint32()&mask)
		}
	}
	return m
}

// refApply is the scalar oracle: one table-kernel MultXOR per nonzero
// coefficient, accumulated into out.
func refApply(f gf.Field, m *matrix.Matrix, in, out [][]byte) {
	for i := 0; i < m.Rows(); i++ {
		for j, a := range m.Row(i) {
			if a == 0 {
				continue
			}
			gf.MultiplierFor(f, a).MultXOR(out[i], in[j])
		}
	}
}

func TestProgramMatchesScalarOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	for _, f := range testFields {
		for _, dims := range [][2]int{{1, 1}, {3, 1}, {1, 5}, {4, 4}, {4, 12}, {7, 3}} {
			rows, cols := dims[0], dims[1]
			for _, words := range []int{1, 37, 1024} {
				size := words * f.WordBytes()
				name := fmt.Sprintf("gf%d_%dx%d_%dB", f.W(), rows, cols, size)
				m := randMatrix(rng, f, rows, cols)
				prog, err := Compile(f, m)
				if err != nil {
					t.Fatalf("%s: Compile: %v", name, err)
				}
				in := randRegions(rng, cols, size)
				want := make([][]byte, rows)
				for i := range want {
					want[i] = make([]byte, size)
				}
				refApply(f, m, in, want)

				got := randRegions(rng, rows, size) // stale contents: overwrite must win
				prog.RunOverwrite(in, got, 0, size)
				for i := range got {
					if !bytes.Equal(got[i], want[i]) {
						t.Errorf("%s: RunOverwrite row %d diverges from oracle", name, i)
					}
				}

				if !prog.HasDerivative() {
					acc := randRegions(rng, rows, size)
					wantAcc := make([][]byte, rows)
					for i := range wantAcc {
						wantAcc[i] = append([]byte(nil), acc[i]...)
					}
					refApply(f, m, in, wantAcc)
					prog.RunAccumulate(in, acc, 0, size)
					for i := range acc {
						if !bytes.Equal(acc[i], wantAcc[i]) {
							t.Errorf("%s: RunAccumulate row %d diverges from oracle", name, i)
						}
					}
				}
			}
		}
	}
}

// TestMultiTileMatchesOracle shrinks the arena budget so one run
// crosses many internal tiles, and checks the stitched result.
func TestMultiTileMatchesOracle(t *testing.T) {
	defer SetArenaBudget(0)
	SetArenaBudget(minProgramTile)
	rng := rand.New(rand.NewSource(82))
	for _, f := range testFields {
		size := 6*minProgramTile + 5*f.WordBytes() // ragged final tile
		m := randMatrix(rng, f, 5, 7)
		prog, err := Compile(f, m)
		if err != nil {
			t.Fatalf("gf%d: Compile: %v", f.W(), err)
		}
		if prog.TileBytes() != minProgramTile {
			t.Fatalf("gf%d: tile %d under minimum budget, want %d", f.W(), prog.TileBytes(), minProgramTile)
		}
		in := randRegions(rng, 7, size)
		want := make([][]byte, 5)
		for i := range want {
			want[i] = make([]byte, size)
		}
		refApply(f, m, in, want)
		out := randRegions(rng, 5, size)
		prog.RunOverwrite(in, out, 0, size)
		for i := range out {
			if !bytes.Equal(out[i], want[i]) {
				t.Errorf("gf%d: multi-tile row %d diverges from oracle", f.W(), i)
			}
		}
	}
}

// TestRunRangeTouchesOnlyWindow pins the span contract the tiled
// kernel driver depends on: a [lo, hi) run must leave bytes outside
// the window untouched.
func TestRunRangeTouchesOnlyWindow(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	f := gf.GF16
	size := 4096
	lo, hi := 512, 3072
	m := randMatrix(rng, f, 4, 6)
	prog, err := Compile(f, m)
	if err != nil {
		t.Fatal(err)
	}
	in := randRegions(rng, 6, size)
	out := randRegions(rng, 4, size)
	before := make([][]byte, 4)
	for i := range before {
		before[i] = append([]byte(nil), out[i]...)
	}
	want := make([][]byte, 4)
	for i := range want {
		want[i] = make([]byte, size)
	}
	refApply(f, m, in, want)
	prog.RunOverwrite(in, out, lo, hi)
	for i := range out {
		if !bytes.Equal(out[i][:lo], before[i][:lo]) || !bytes.Equal(out[i][hi:], before[i][hi:]) {
			t.Errorf("row %d: bytes outside [%d,%d) were touched", i, lo, hi)
		}
		if !bytes.Equal(out[i][lo:hi], want[i][lo:hi]) {
			t.Errorf("row %d: window diverges from oracle", i)
		}
	}
}

// TestVectorLevelsAgree runs the same program at every vector level the
// host supports; all levels must produce identical bytes.
func TestVectorLevelsAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(84))
	f := gf.GF8
	size := 8192 + 40 // vector body + word + byte tails
	m := randMatrix(rng, f, 5, 9)
	prog, err := Compile(f, m)
	if err != nil {
		t.Fatal(err)
	}
	in := randRegions(rng, 9, size)
	run := func(level int) [][]byte {
		defer SetVectorISA(SetVectorISA(level))
		out := make([][]byte, 5)
		for i := range out {
			out[i] = make([]byte, size)
		}
		prog.RunOverwrite(in, out, 0, size)
		return out
	}
	base := run(gf.VecNone)
	for _, level := range []int{gf.VecAVX2, gf.VecAVX512} {
		if level > gf.VectorISALevel() {
			continue
		}
		got := run(level)
		for i := range got {
			if !bytes.Equal(got[i], base[i]) {
				t.Errorf("level %d row %d diverges from portable sweep", level, i)
			}
		}
	}
}

// TestXorKernelsFused checks every fused width and the aliasing
// contract (dst == first source) against naive byte loops, across
// sizes that exercise the vector body, word sweep and byte tail.
func TestXorKernelsFused(t *testing.T) {
	rng := rand.New(rand.NewSource(85))
	for _, n := range []int{0, 1, 7, 8, 63, 64, 65, 127, 128, 200, 4096, 4103} {
		srcs := randRegions(rng, 5, n)
		naive := func(k int) []byte {
			w := make([]byte, n)
			for i := 0; i < n; i++ {
				for s := 0; s < k; s++ {
					w[i] ^= srcs[s][i]
				}
			}
			return w
		}
		dst := make([]byte, n)
		xorSet2(dst, srcs[0], srcs[1])
		if !bytes.Equal(dst, naive(2)) {
			t.Errorf("n=%d: xorSet2 mismatch", n)
		}
		xorSet3(dst, srcs[0], srcs[1], srcs[2])
		if !bytes.Equal(dst, naive(3)) {
			t.Errorf("n=%d: xorSet3 mismatch", n)
		}
		xorSet4(dst, srcs[0], srcs[1], srcs[2], srcs[3])
		if !bytes.Equal(dst, naive(4)) {
			t.Errorf("n=%d: xorSet4 mismatch", n)
		}
		xorSet5(dst, srcs[0], srcs[1], srcs[2], srcs[3], srcs[4])
		if !bytes.Equal(dst, naive(5)) {
			t.Errorf("n=%d: xorSet5 mismatch", n)
		}
		// Aliased accumulate: dst ^= the remaining sources.
		alias := append([]byte(nil), srcs[0]...)
		xorAcc4(alias, srcs[1], srcs[2], srcs[3], srcs[4])
		if !bytes.Equal(alias, naive(5)) {
			t.Errorf("n=%d: aliased xorAcc4 mismatch", n)
		}
	}
}

// TestXtimesMatchesFieldMul pins the SWAR reduction passes against the
// field's own multiply-by-x, lane by lane.
func TestXtimesMatchesFieldMul(t *testing.T) {
	rng := rand.New(rand.NewSource(86))
	for _, level := range []int{gf.VecNone, gf.VecAVX2} {
		if level > gf.VectorISALevel() {
			continue
		}
		t.Run(fmt.Sprintf("level%d", level), func(t *testing.T) {
			defer SetVectorISA(SetVectorISA(level))
			testXtimes(t, rng)
		})
	}
}

func testXtimes(t *testing.T, rng *rand.Rand) {
	for _, f := range testFields {
		wb := f.WordBytes()
		size := 1021 * wb // odd word count: exercises the scalar tail
		src := make([]byte, size)
		rng.Read(src)
		dst := make([]byte, size)
		xtimesRegion(f.W(), dst, src)
		for i := 0; i < size; i += wb {
			var v, g uint32
			for b := 0; b < wb; b++ {
				v |= uint32(src[i+b]) << (8 * b)
				g |= uint32(dst[i+b]) << (8 * b)
			}
			if want := f.Mul(2, v); g != want {
				t.Fatalf("gf%d: xtimes(%#x) = %#x, want %#x", f.W(), v, g, want)
			}
		}
		// In place: chains reuse their slot.
		inPlace := append([]byte(nil), src...)
		xtimesRegion(f.W(), inPlace, inPlace)
		if !bytes.Equal(inPlace, dst) {
			t.Errorf("gf%d: in-place xtimes diverges", f.W())
		}
	}
}

// TestRunZeroAllocs pins the steady-state allocation contract of the
// compiled execute path.
func TestRunZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector defeats sync.Pool reuse")
	}
	rng := rand.New(rand.NewSource(87))
	f := gf.GF16
	m := randMatrix(rng, f, 6, 10)
	prog, err := Compile(f, m)
	if err != nil {
		t.Fatal(err)
	}
	size := 64 << 10
	in := randRegions(rng, 10, size)
	out := randRegions(rng, 6, size)
	prog.RunOverwrite(in, out, 0, size) // warm the arena pool
	if avg := testing.AllocsPerRun(10, func() {
		prog.RunOverwrite(in, out, 0, size)
	}); avg != 0 {
		t.Errorf("RunOverwrite allocates %v objects/op in steady state, want 0", avg)
	}
	if !prog.HasDerivative() {
		if avg := testing.AllocsPerRun(10, func() {
			prog.RunAccumulate(in, out, 0, size)
		}); avg != 0 {
			t.Errorf("RunAccumulate allocates %v objects/op in steady state, want 0", avg)
		}
	}
}

func TestRunAccumulatePanicsOnDerivative(t *testing.T) {
	p := &Program{w: 8, rows: 1, cols: 1, derivative: true}
	defer func() {
		if recover() == nil {
			t.Fatal("RunAccumulate ran a derivative-scheduled program")
		}
	}()
	p.RunAccumulate(make([][]byte, 1), make([][]byte, 1), 0, 0)
}

func TestTileBytesClamps(t *testing.T) {
	defer SetArenaBudget(0)
	SetArenaBudget(1 << 20)
	one := &Program{nslots: 1}
	if got := one.TileBytes(); got != maxProgramTile {
		t.Errorf("1-slot tile under a 1 MiB budget = %d, want cap %d", got, maxProgramTile)
	}
	many := &Program{nslots: 4096}
	if got := many.TileBytes(); got != minProgramTile {
		t.Errorf("4096-slot tile = %d, want floor %d", got, minProgramTile)
	}
	SetArenaBudget(-1)
	if got := ArenaBudget(); got != DefaultArenaBudget {
		t.Errorf("SetArenaBudget(-1) left budget %d, want default restore", got)
	}
}

func TestCompileCachedCounters(t *testing.T) {
	rng := rand.New(rand.NewSource(88))
	f := gf.GF8
	m := randMatrix(rng, f, 4, 4)
	ResetCacheStats()
	p1, err := CompileCached(f, m)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := CompileCached(f, m.Clone())
	if err != nil {
		t.Fatal(err)
	}
	if p1 != p2 {
		t.Error("identical matrices compiled to distinct programs")
	}
	if hits, misses := CacheStats(); hits != 1 || misses != 1 {
		t.Errorf("cache stats after compile+recompile = %d hits / %d misses, want 1/1", hits, misses)
	}
	// A genuinely different matrix must never share a program.
	m2 := m.Clone()
	m2.Set(0, 0, m.At(0, 0)^1)
	p3, err := CompileCached(f, m2)
	if err != nil {
		t.Fatal(err)
	}
	if p3 == p1 {
		t.Error("distinct matrices shared one cached program")
	}
}

// TestScheduleBeatsNaive pins that the scheduler actually pays for
// itself on dense matrices: scheduled XORs strictly below the naive
// set-bit count.
// TestDenseMatrixCompilesFlatAndFast pins the scheduler gate: a wide
// dense matrix (the whole-strategy G of a cost-analysis sweep) must
// lower flat — the CSE pair scan on such expansions is near-cubic and
// once took minutes per plan — while staying correct. The budget is
// generous (the flat path is ~10 ms even on slow CI); the pre-gate
// compile took minutes.
func TestDenseMatrixCompilesFlatAndFast(t *testing.T) {
	rng := rand.New(rand.NewSource(97))
	f := gf.GF16
	m := randMatrix(rng, f, 6, 120) // ones ≈ 5760: under the old CSE cap, over the gate
	start := time.Now()
	prog, err := Compile(f, m)
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("dense compile took %v; scheduler gate not engaging", elapsed)
	}
	if err != nil {
		t.Fatal(err)
	}
	if prog.XORs() != prog.Ones() {
		t.Errorf("gated program scheduled %d XORs != flat %d", prog.XORs(), prog.Ones())
	}
	if prog.HasDerivative() {
		t.Error("flat program reports a derivative schedule")
	}
	size := 256 * f.WordBytes()
	in := randRegions(rng, m.Cols(), size)
	got := randRegions(rng, m.Rows(), size)
	want := make([][]byte, m.Rows())
	for i := range want {
		want[i] = make([]byte, size)
	}
	refApply(f, m, in, want)
	prog.RunOverwrite(in, got, 0, size)
	for i := range want {
		if !bytes.Equal(got[i], want[i]) {
			t.Fatalf("row %d diverges from the scalar oracle", i)
		}
	}
}

func TestScheduleBeatsNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(89))
	for _, f := range testFields {
		m := randMatrix(rng, f, 8, 8)
		prog, err := Compile(f, m)
		if err != nil {
			t.Fatal(err)
		}
		if prog.XORs() >= prog.Ones() {
			t.Errorf("gf%d: scheduled %d XORs >= naive %d", f.W(), prog.XORs(), prog.Ones())
		}
		if prog.Slots() == 0 {
			t.Errorf("gf%d: dense program compiled to zero temp slots", f.W())
		}
	}
}
