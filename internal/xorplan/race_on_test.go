//go:build race

package xorplan

// raceEnabled reports whether the race detector instruments this build.
const raceEnabled = true
