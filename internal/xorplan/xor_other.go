//go:build !amd64

package xorplan

// Off amd64 vecLevel is always gf.VecNone, so these are unreachable;
// they exist so xor.go compiles on every GOARCH.

func xor2AVX2(dst, a, b *byte, n int)       { panic("xorplan: no vector kernels") }
func xor3AVX2(dst, a, b, c *byte, n int)    { panic("xorplan: no vector kernels") }
func xor4AVX2(dst, a, b, c, d *byte, n int) { panic("xorplan: no vector kernels") }
func xor5AVX2(dst, a, b, c, d, e *byte, n int) {
	panic("xorplan: no vector kernels")
}

func xtimes8AVX2(dst, src *byte, n int)  { panic("xorplan: no vector kernels") }
func xtimes16AVX2(dst, src *byte, n int) { panic("xorplan: no vector kernels") }
func xtimes32AVX2(dst, src *byte, n int) { panic("xorplan: no vector kernels") }

func xor2AVX512(dst, a, b *byte, n int)       { panic("xorplan: no vector kernels") }
func xor3AVX512(dst, a, b, c *byte, n int)    { panic("xorplan: no vector kernels") }
func xor4AVX512(dst, a, b, c, d *byte, n int) { panic("xorplan: no vector kernels") }
func xor5AVX512(dst, a, b, c, d, e *byte, n int) {
	panic("xorplan: no vector kernels")
}
