package xorplan

import "sync"

// runState is the pooled per-run temp arena: one backing array of
// nslots × tile bytes, resliced into slot views per tile. The pool is
// the same capacity-check idiom as the kernel viewArena — entries are
// reused when big enough and regrown in place when not, so
// steady-state runs allocate nothing.
type runState struct {
	backing []byte
	slots   [][]byte
}

var runPool = sync.Pool{New: func() interface{} { return new(runState) }}

// getRunState is called once per run, not per tile: the warm-up
// regrows and the pool boxing are amortized, so it stays outside the
// //ppm:hotpath region like the kernel's getViewArena.
func getRunState(nslots, tile int) *runState {
	st := runPool.Get().(*runState)
	if need := nslots * tile; cap(st.backing) < need {
		st.backing = make([]byte, need)
	} else {
		st.backing = st.backing[:need]
	}
	if cap(st.slots) < nslots {
		st.slots = make([][]byte, nslots)
	} else {
		st.slots = st.slots[:nslots]
	}
	return st
}

func (st *runState) release() {
	for i := range st.slots {
		st.slots[i] = nil
	}
	runPool.Put(st)
}

// RunOverwrite executes the program over the byte range [lo, hi),
// fully overwriting out: out[i][lo:hi] = Σ_j a_ij · in[j][lo:hi].
// Callers skip any zeroing pass — derivative-scheduled programs only
// run in this mode. in must hold Cols regions and out Rows regions,
// all word-aligned and at least hi bytes long; hi-lo must be a
// multiple of the word size. Safe for concurrent calls on disjoint
// ranges: mutable state is a pooled per-call arena.
func (p *Program) RunOverwrite(in, out [][]byte, lo, hi int) {
	p.checkShape(in, out, lo, hi)
	p.run(in, out, lo, hi, false)
}

// RunAccumulate executes the program over [lo, hi) in accumulate mode:
// out[i][lo:hi] ^= Σ_j a_ij · in[j][lo:hi]. Panics on a derivative
// program — row-to-row copies are only sound when out is owned by the
// program, so callers gate on HasDerivative.
func (p *Program) RunAccumulate(in, out [][]byte, lo, hi int) {
	if p.derivative {
		panic("xorplan: RunAccumulate on a derivative-scheduled program; gate on HasDerivative")
	}
	p.checkShape(in, out, lo, hi)
	p.run(in, out, lo, hi, true)
}

func (p *Program) checkShape(in, out [][]byte, lo, hi int) {
	if len(in) != p.cols || len(out) != p.rows {
		panic("xorplan: region count does not match the compiled matrix")
	}
	if lo < 0 || hi < lo {
		panic("xorplan: invalid byte range")
	}
	if (hi-lo)%(p.w/8) != 0 {
		panic("xorplan: byte range is not a whole number of words")
	}
}

// run sweeps [lo, hi) in arena-budget tiles: per tile, materialise the
// derived-source chains and CSE temps into the slot arena, then fuse
// each output row's XOR set through the widest kernels. References
// were bounds-checked at compile time; the loop carries no checks.
//
//ppm:hotpath
func (p *Program) run(in, out [][]byte, lo, hi int, accumulate bool) {
	if lo >= hi {
		return
	}
	tile := p.TileBytes()
	st := getRunState(p.nslots, tile)
	slots := st.slots
	for t := lo; t < hi; t += tile {
		te := t + tile
		if te > hi {
			te = hi
		}
		n := te - t
		for s := range slots {
			o := s * tile
			slots[s] = st.backing[o : o+n : o+n]
		}
		for _, ins := range p.instrs {
			a := pick(slots, in, ins.a, t, te)
			if ins.kind == opXtimes {
				xtimesRegion(p.w, slots[ins.dst], a)
			} else {
				xorSet2(slots[ins.dst], a, pick(slots, in, ins.b, t, te))
			}
		}
		for i := range p.outs {
			runOut(&p.outs[i], out, slots, in, t, te, accumulate)
		}
	}
	st.release()
}

// pick resolves a source reference: arena slot when >= 0, input region
// window when negative.
//
//ppm:hotpath
func pick(slots, in [][]byte, ref int32, t, te int) []byte {
	if ref >= 0 {
		return slots[ref]
	}
	return in[int(^ref)][t:te]
}

// runOut computes one output window. Overwrite mode seeds the
// destination with the widest set kernel (or the derivative parent
// copy); both modes then drain the remaining sources through the
// accumulate kernels, four per pass.
//
//ppm:hotpath
func runOut(op *outOp, out, slots, in [][]byte, t, te int, accumulate bool) {
	dst := out[op.dst][t:te]
	srcs := op.srcs
	if !accumulate {
		if op.from >= 0 {
			parent := out[op.from][t:te]
			switch len(srcs) {
			case 0:
				copy(dst, parent)
			case 1:
				xorSet2(dst, parent, pick(slots, in, srcs[0], t, te))
				srcs = srcs[1:]
			case 2:
				xorSet3(dst, parent, pick(slots, in, srcs[0], t, te), pick(slots, in, srcs[1], t, te))
				srcs = srcs[2:]
			default:
				xorSet4(dst, parent, pick(slots, in, srcs[0], t, te), pick(slots, in, srcs[1], t, te), pick(slots, in, srcs[2], t, te))
				srcs = srcs[3:]
			}
		} else {
			switch len(srcs) {
			case 0:
				zeroRegion(dst)
			case 1:
				copy(dst, pick(slots, in, srcs[0], t, te))
				srcs = srcs[1:]
			case 2:
				xorSet2(dst, pick(slots, in, srcs[0], t, te), pick(slots, in, srcs[1], t, te))
				srcs = srcs[2:]
			case 3:
				xorSet3(dst, pick(slots, in, srcs[0], t, te), pick(slots, in, srcs[1], t, te), pick(slots, in, srcs[2], t, te))
				srcs = srcs[3:]
			case 4:
				xorSet4(dst, pick(slots, in, srcs[0], t, te), pick(slots, in, srcs[1], t, te), pick(slots, in, srcs[2], t, te), pick(slots, in, srcs[3], t, te))
				srcs = srcs[4:]
			default:
				xorSet5(dst, pick(slots, in, srcs[0], t, te), pick(slots, in, srcs[1], t, te), pick(slots, in, srcs[2], t, te), pick(slots, in, srcs[3], t, te), pick(slots, in, srcs[4], t, te))
				srcs = srcs[5:]
			}
		}
	}
	for len(srcs) > 0 {
		switch len(srcs) {
		case 1:
			xorAcc1(dst, pick(slots, in, srcs[0], t, te))
			srcs = nil
		case 2:
			xorAcc2(dst, pick(slots, in, srcs[0], t, te), pick(slots, in, srcs[1], t, te))
			srcs = nil
		case 3:
			xorAcc3(dst, pick(slots, in, srcs[0], t, te), pick(slots, in, srcs[1], t, te), pick(slots, in, srcs[2], t, te))
			srcs = nil
		default:
			xorAcc4(dst, pick(slots, in, srcs[0], t, te), pick(slots, in, srcs[1], t, te), pick(slots, in, srcs[2], t, te), pick(slots, in, srcs[3], t, te))
			srcs = srcs[4:]
		}
	}
}
