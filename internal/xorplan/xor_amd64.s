//go:build amd64

#include "textflag.h"

// Fused multi-source XOR kernels: dst = s1 ^ ... ^ sK, 64 bytes per
// iteration. n must be positive and a multiple of 64. The AVX-512
// forms use one ZMM per block; the AVX2 forms use two YMM. Sources are
// fully loaded before the store, so dst may exactly alias any source.

// func xor2AVX512(dst, a, b *byte, n int)
TEXT ·xor2AVX512(SB), NOSPLIT, $0-32
	MOVQ dst+0(FP), DI
	MOVQ a+8(FP), SI
	MOVQ b+16(FP), DX
	MOVQ n+24(FP), CX

loop2z:
	VMOVDQU64 (SI), Z0
	VPXORQ    (DX), Z0, Z0
	VMOVDQU64 Z0, (DI)
	ADDQ      $64, SI
	ADDQ      $64, DX
	ADDQ      $64, DI
	SUBQ      $64, CX
	JNE       loop2z
	VZEROUPPER
	RET

// func xor3AVX512(dst, a, b, c *byte, n int)
TEXT ·xor3AVX512(SB), NOSPLIT, $0-40
	MOVQ dst+0(FP), DI
	MOVQ a+8(FP), SI
	MOVQ b+16(FP), DX
	MOVQ c+24(FP), R8
	MOVQ n+32(FP), CX

loop3z:
	VMOVDQU64 (SI), Z0
	VPXORQ    (DX), Z0, Z0
	VPXORQ    (R8), Z0, Z0
	VMOVDQU64 Z0, (DI)
	ADDQ      $64, SI
	ADDQ      $64, DX
	ADDQ      $64, R8
	ADDQ      $64, DI
	SUBQ      $64, CX
	JNE       loop3z
	VZEROUPPER
	RET

// func xor4AVX512(dst, a, b, c, d *byte, n int)
TEXT ·xor4AVX512(SB), NOSPLIT, $0-48
	MOVQ dst+0(FP), DI
	MOVQ a+8(FP), SI
	MOVQ b+16(FP), DX
	MOVQ c+24(FP), R8
	MOVQ d+32(FP), R9
	MOVQ n+40(FP), CX

loop4z:
	VMOVDQU64 (SI), Z0
	VPXORQ    (DX), Z0, Z0
	VPXORQ    (R8), Z0, Z0
	VPXORQ    (R9), Z0, Z0
	VMOVDQU64 Z0, (DI)
	ADDQ      $64, SI
	ADDQ      $64, DX
	ADDQ      $64, R8
	ADDQ      $64, R9
	ADDQ      $64, DI
	SUBQ      $64, CX
	JNE       loop4z
	VZEROUPPER
	RET

// func xor5AVX512(dst, a, b, c, d, e *byte, n int)
TEXT ·xor5AVX512(SB), NOSPLIT, $0-56
	MOVQ dst+0(FP), DI
	MOVQ a+8(FP), SI
	MOVQ b+16(FP), DX
	MOVQ c+24(FP), R8
	MOVQ d+32(FP), R9
	MOVQ e+40(FP), R10
	MOVQ n+48(FP), CX

loop5z:
	VMOVDQU64 (SI), Z0
	VPXORQ    (DX), Z0, Z0
	VPXORQ    (R8), Z0, Z0
	VPXORQ    (R9), Z0, Z0
	VPXORQ    (R10), Z0, Z0
	VMOVDQU64 Z0, (DI)
	ADDQ      $64, SI
	ADDQ      $64, DX
	ADDQ      $64, R8
	ADDQ      $64, R9
	ADDQ      $64, R10
	ADDQ      $64, DI
	SUBQ      $64, CX
	JNE       loop5z
	VZEROUPPER
	RET

// func xor2AVX2(dst, a, b *byte, n int)
TEXT ·xor2AVX2(SB), NOSPLIT, $0-32
	MOVQ dst+0(FP), DI
	MOVQ a+8(FP), SI
	MOVQ b+16(FP), DX
	MOVQ n+24(FP), CX

loop2y:
	VMOVDQU (SI), Y0
	VMOVDQU 32(SI), Y1
	VPXOR   (DX), Y0, Y0
	VPXOR   32(DX), Y1, Y1
	VMOVDQU Y0, (DI)
	VMOVDQU Y1, 32(DI)
	ADDQ    $64, SI
	ADDQ    $64, DX
	ADDQ    $64, DI
	SUBQ    $64, CX
	JNE     loop2y
	VZEROUPPER
	RET

// func xor3AVX2(dst, a, b, c *byte, n int)
TEXT ·xor3AVX2(SB), NOSPLIT, $0-40
	MOVQ dst+0(FP), DI
	MOVQ a+8(FP), SI
	MOVQ b+16(FP), DX
	MOVQ c+24(FP), R8
	MOVQ n+32(FP), CX

loop3y:
	VMOVDQU (SI), Y0
	VMOVDQU 32(SI), Y1
	VPXOR   (DX), Y0, Y0
	VPXOR   32(DX), Y1, Y1
	VPXOR   (R8), Y0, Y0
	VPXOR   32(R8), Y1, Y1
	VMOVDQU Y0, (DI)
	VMOVDQU Y1, 32(DI)
	ADDQ    $64, SI
	ADDQ    $64, DX
	ADDQ    $64, R8
	ADDQ    $64, DI
	SUBQ    $64, CX
	JNE     loop3y
	VZEROUPPER
	RET

// func xor4AVX2(dst, a, b, c, d *byte, n int)
TEXT ·xor4AVX2(SB), NOSPLIT, $0-48
	MOVQ dst+0(FP), DI
	MOVQ a+8(FP), SI
	MOVQ b+16(FP), DX
	MOVQ c+24(FP), R8
	MOVQ d+32(FP), R9
	MOVQ n+40(FP), CX

loop4y:
	VMOVDQU (SI), Y0
	VMOVDQU 32(SI), Y1
	VPXOR   (DX), Y0, Y0
	VPXOR   32(DX), Y1, Y1
	VPXOR   (R8), Y0, Y0
	VPXOR   32(R8), Y1, Y1
	VPXOR   (R9), Y0, Y0
	VPXOR   32(R9), Y1, Y1
	VMOVDQU Y0, (DI)
	VMOVDQU Y1, 32(DI)
	ADDQ    $64, SI
	ADDQ    $64, DX
	ADDQ    $64, R8
	ADDQ    $64, R9
	ADDQ    $64, DI
	SUBQ    $64, CX
	JNE     loop4y
	VZEROUPPER
	RET

// func xor5AVX2(dst, a, b, c, d, e *byte, n int)
TEXT ·xor5AVX2(SB), NOSPLIT, $0-56
	MOVQ dst+0(FP), DI
	MOVQ a+8(FP), SI
	MOVQ b+16(FP), DX
	MOVQ c+24(FP), R8
	MOVQ d+32(FP), R9
	MOVQ e+40(FP), R10
	MOVQ n+48(FP), CX

loop5y:
	VMOVDQU (SI), Y0
	VMOVDQU 32(SI), Y1
	VPXOR   (DX), Y0, Y0
	VPXOR   32(DX), Y1, Y1
	VPXOR   (R8), Y0, Y0
	VPXOR   32(R8), Y1, Y1
	VPXOR   (R9), Y0, Y0
	VPXOR   32(R9), Y1, Y1
	VPXOR   (R10), Y0, Y0
	VPXOR   32(R10), Y1, Y1
	VMOVDQU Y0, (DI)
	VMOVDQU Y1, 32(DI)
	ADDQ    $64, SI
	ADDQ    $64, DX
	ADDQ    $64, R8
	ADDQ    $64, R9
	ADDQ    $64, R10
	ADDQ    $64, DI
	SUBQ    $64, CX
	JNE     loop5y
	VZEROUPPER
	RET
