//go:build amd64

#include "textflag.h"

// Vectorized xtimes passes: dst = x ⊗ src lane-wise, 64 bytes per
// iteration, n positive and a multiple of 64 (callers peel the tail
// onto the SWAR sweeps). The doubling is the classic sign-mask form:
// lanes that will overflow have their top bit set, so a signed
// compare-greater-than-zero yields an all-ones mask per overflowing
// lane, which selects the reduction polynomial after the in-lane
// shift. Sources are fully loaded before the store, so dst may exactly
// alias src (in-place chain steps).

DATA xtpoly8<>+0(SB)/1, $0x1D
GLOBL xtpoly8<>(SB), RODATA|NOPTR, $1

DATA xtpoly16<>+0(SB)/2, $0x100B
GLOBL xtpoly16<>(SB), RODATA|NOPTR, $2

DATA xtpoly32<>+0(SB)/4, $0x00400007
GLOBL xtpoly32<>(SB), RODATA|NOPTR, $4

// func xtimes8AVX2(dst, src *byte, n int)
TEXT ·xtimes8AVX2(SB), NOSPLIT, $0-24
	MOVQ         dst+0(FP), DI
	MOVQ         src+8(FP), SI
	MOVQ         n+16(FP), CX
	VPXOR        Y7, Y7, Y7
	VPBROADCASTB xtpoly8<>(SB), Y8

loop8:
	VMOVDQU  (SI), Y0
	VMOVDQU  32(SI), Y2
	VPCMPGTB Y0, Y7, Y1 // Y1 = (0 > lane): all-ones where the top bit is set
	VPCMPGTB Y2, Y7, Y3
	VPADDB   Y0, Y0, Y0 // in-lane shift left by one
	VPADDB   Y2, Y2, Y2
	VPAND    Y8, Y1, Y1 // reduction polynomial where lanes overflowed
	VPAND    Y8, Y3, Y3
	VPXOR    Y1, Y0, Y0
	VPXOR    Y3, Y2, Y2
	VMOVDQU  Y0, (DI)
	VMOVDQU  Y2, 32(DI)
	ADDQ     $64, SI
	ADDQ     $64, DI
	SUBQ     $64, CX
	JNE      loop8
	VZEROUPPER
	RET

// func xtimes16AVX2(dst, src *byte, n int)
TEXT ·xtimes16AVX2(SB), NOSPLIT, $0-24
	MOVQ         dst+0(FP), DI
	MOVQ         src+8(FP), SI
	MOVQ         n+16(FP), CX
	VPXOR        Y7, Y7, Y7
	VPBROADCASTW xtpoly16<>(SB), Y8

loop16:
	VMOVDQU  (SI), Y0
	VMOVDQU  32(SI), Y2
	VPCMPGTW Y0, Y7, Y1
	VPCMPGTW Y2, Y7, Y3
	VPADDW   Y0, Y0, Y0
	VPADDW   Y2, Y2, Y2
	VPAND    Y8, Y1, Y1
	VPAND    Y8, Y3, Y3
	VPXOR    Y1, Y0, Y0
	VPXOR    Y3, Y2, Y2
	VMOVDQU  Y0, (DI)
	VMOVDQU  Y2, 32(DI)
	ADDQ     $64, SI
	ADDQ     $64, DI
	SUBQ     $64, CX
	JNE      loop16
	VZEROUPPER
	RET

// func xtimes32AVX2(dst, src *byte, n int)
TEXT ·xtimes32AVX2(SB), NOSPLIT, $0-24
	MOVQ         dst+0(FP), DI
	MOVQ         src+8(FP), SI
	MOVQ         n+16(FP), CX
	VPXOR        Y7, Y7, Y7
	VPBROADCASTD xtpoly32<>(SB), Y8

loop32:
	VMOVDQU  (SI), Y0
	VMOVDQU  32(SI), Y2
	VPCMPGTD Y0, Y7, Y1
	VPCMPGTD Y2, Y7, Y3
	VPADDD   Y0, Y0, Y0
	VPADDD   Y2, Y2, Y2
	VPAND    Y8, Y1, Y1
	VPAND    Y8, Y3, Y3
	VPXOR    Y1, Y0, Y0
	VPXOR    Y3, Y2, Y2
	VMOVDQU  Y0, (DI)
	VMOVDQU  Y2, 32(DI)
	ADDQ     $64, SI
	ADDQ     $64, DI
	SUBQ     $64, CX
	JNE      loop32
	VZEROUPPER
	RET
