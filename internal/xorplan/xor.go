package xorplan

import (
	"encoding/binary"
	"os"

	"ppm/internal/gf"
)

// Fused XOR kernels: dst = s1 ^ s2 [^ s3 [^ s4 [^ s5]]] over
// equal-length regions. Bodies 64 bytes and larger go through the
// AVX-512 or AVX2 VPXOR kernels when the CPU has them; the remainder
// runs as 64-bit word sweeps with byte tails. Exact aliasing of dst
// with any source is allowed — every kernel loads a block's sources
// before storing the block — which is what the accumulate forms and
// in-place slot reuse rely on.

// vecLevel is the active vector-XOR ISA for this process: the hardware
// level from gf.VectorISALevel, or VecNone under PPM_NO_VEC (the
// escape hatch to the portable word sweeps).
var vecLevel = detectVec()

func detectVec() int {
	if os.Getenv("PPM_NO_VEC") != "" {
		return gf.VecNone
	}
	return gf.VectorISALevel()
}

// SetVectorISA overrides the active vector-XOR level and returns the
// previous one, clamped to what the hardware supports. Test/bench
// seam, same restore idiom as gf.SetAffineKernels:
//
//	defer xorplan.SetVectorISA(xorplan.SetVectorISA(gf.VecNone))
//
// Not synchronized — do not race it against running programs.
func SetVectorISA(level int) (prev int) {
	prev = vecLevel
	if max := gf.VectorISALevel(); level > max {
		level = max
	}
	if level < gf.VecNone {
		level = gf.VecNone
	}
	vecLevel = level
	return prev
}

// zeroRegion clears dst (compiles to a memclr).
//
//ppm:hotpath
func zeroRegion(dst []byte) {
	for i := range dst {
		dst[i] = 0
	}
}

//ppm:hotpath
func xorSet2(dst, a, b []byte) {
	n := len(dst)
	i := 0
	if m := n &^ 63; m > 0 {
		switch vecLevel {
		case gf.VecAVX512:
			xor2AVX512(&dst[0], &a[0], &b[0], m)
			i = m
		case gf.VecAVX2:
			xor2AVX2(&dst[0], &a[0], &b[0], m)
			i = m
		}
	}
	for ; i+8 <= n; i += 8 {
		binary.LittleEndian.PutUint64(dst[i:],
			binary.LittleEndian.Uint64(a[i:])^binary.LittleEndian.Uint64(b[i:]))
	}
	for ; i < n; i++ {
		dst[i] = a[i] ^ b[i]
	}
}

//ppm:hotpath
func xorSet3(dst, a, b, c []byte) {
	n := len(dst)
	i := 0
	if m := n &^ 63; m > 0 {
		switch vecLevel {
		case gf.VecAVX512:
			xor3AVX512(&dst[0], &a[0], &b[0], &c[0], m)
			i = m
		case gf.VecAVX2:
			xor3AVX2(&dst[0], &a[0], &b[0], &c[0], m)
			i = m
		}
	}
	for ; i+8 <= n; i += 8 {
		binary.LittleEndian.PutUint64(dst[i:],
			binary.LittleEndian.Uint64(a[i:])^
				binary.LittleEndian.Uint64(b[i:])^
				binary.LittleEndian.Uint64(c[i:]))
	}
	for ; i < n; i++ {
		dst[i] = a[i] ^ b[i] ^ c[i]
	}
}

//ppm:hotpath
func xorSet4(dst, a, b, c, d []byte) {
	n := len(dst)
	i := 0
	if m := n &^ 63; m > 0 {
		switch vecLevel {
		case gf.VecAVX512:
			xor4AVX512(&dst[0], &a[0], &b[0], &c[0], &d[0], m)
			i = m
		case gf.VecAVX2:
			xor4AVX2(&dst[0], &a[0], &b[0], &c[0], &d[0], m)
			i = m
		}
	}
	for ; i+8 <= n; i += 8 {
		binary.LittleEndian.PutUint64(dst[i:],
			binary.LittleEndian.Uint64(a[i:])^
				binary.LittleEndian.Uint64(b[i:])^
				binary.LittleEndian.Uint64(c[i:])^
				binary.LittleEndian.Uint64(d[i:]))
	}
	for ; i < n; i++ {
		dst[i] = a[i] ^ b[i] ^ c[i] ^ d[i]
	}
}

//ppm:hotpath
func xorSet5(dst, a, b, c, d, e []byte) {
	n := len(dst)
	i := 0
	if m := n &^ 63; m > 0 {
		switch vecLevel {
		case gf.VecAVX512:
			xor5AVX512(&dst[0], &a[0], &b[0], &c[0], &d[0], &e[0], m)
			i = m
		case gf.VecAVX2:
			xor5AVX2(&dst[0], &a[0], &b[0], &c[0], &d[0], &e[0], m)
			i = m
		}
	}
	for ; i+8 <= n; i += 8 {
		binary.LittleEndian.PutUint64(dst[i:],
			binary.LittleEndian.Uint64(a[i:])^
				binary.LittleEndian.Uint64(b[i:])^
				binary.LittleEndian.Uint64(c[i:])^
				binary.LittleEndian.Uint64(d[i:])^
				binary.LittleEndian.Uint64(e[i:]))
	}
	for ; i < n; i++ {
		dst[i] = a[i] ^ b[i] ^ c[i] ^ d[i] ^ e[i]
	}
}

// Accumulate forms: dst ^= a [^ b [^ c [^ d]]], the K-source fused
// passes with dst as first source (alias-exact, so safe).

//ppm:hotpath
func xorAcc1(dst, a []byte) { xorSet2(dst, dst, a) }

//ppm:hotpath
func xorAcc2(dst, a, b []byte) { xorSet3(dst, dst, a, b) }

//ppm:hotpath
func xorAcc3(dst, a, b, c []byte) { xorSet4(dst, dst, a, b, c) }

//ppm:hotpath
func xorAcc4(dst, a, b, c, d []byte) { xorSet5(dst, dst, a, b, c, d) }
