// Package workload simulates read traffic against a degraded
// erasure-coded volume — the cloud scenario motivating LRC in the
// paper's introduction: transient unavailability turns reads of lost
// blocks into reconstructions, and the reconstruction width decides the
// degraded-read latency. Reads of healthy sectors are served directly;
// reads of lost sectors run a *partial* PPM decode that materialises
// only the requested sector's recovery closure (one local group for
// LRC, one stripe row for an SD disk failure, k blocks for RS).
package workload

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"ppm/internal/codes"
	"ppm/internal/core"
	"ppm/internal/decode"
	"ppm/internal/kernel"
	"ppm/internal/stripe"
)

// Read is one request: a sector of a stripe.
type Read struct {
	StripeIdx int
	Sector    int
}

// UniformTrace draws reads uniformly over stripes and sectors.
func UniformTrace(numStripes, sectors, reads int, seed int64) []Read {
	rng := rand.New(rand.NewSource(seed))
	trace := make([]Read, reads)
	for i := range trace {
		trace[i] = Read{StripeIdx: rng.Intn(numStripes), Sector: rng.Intn(sectors)}
	}
	return trace
}

// ZipfTrace skews reads toward hot stripes (s = 1.2), the access
// pattern behind popularity-based reconstruction schedulers (PRO, §V).
func ZipfTrace(numStripes, sectors, reads int, seed int64) []Read {
	rng := rand.New(rand.NewSource(seed))
	z := rand.NewZipf(rng, 1.2, 1, uint64(numStripes-1))
	trace := make([]Read, reads)
	for i := range trace {
		trace[i] = Read{StripeIdx: int(z.Uint64()), Sector: rng.Intn(sectors)}
	}
	return trace
}

// LatencyStats summarises a latency sample.
type LatencyStats struct {
	Count            int
	Mean, P50, P99   time.Duration
	Max              time.Duration
	MultXORsPerOp    float64
	BytesServedTotal int64
}

// Result is one simulation's outcome.
type Result struct {
	Reads    int
	Degraded int
	Healthy  LatencyStats
	Repair   LatencyStats
}

// String renders a compact report.
func (r Result) String() string {
	return fmt.Sprintf("reads=%d degraded=%d | healthy p50=%v p99=%v | degraded p50=%v p99=%v mean=%v ops/read=%.1f",
		r.Reads, r.Degraded,
		r.Healthy.P50, r.Healthy.P99,
		r.Repair.P50, r.Repair.P99, r.Repair.Mean, r.Repair.MultXORsPerOp)
}

// Volume is the simulated degraded store: encoded stripes plus the
// standing failure scenario (the same disks fail in every stripe).
type Volume struct {
	code     codes.Code
	stripes  []*stripe.Stripe
	scenario codes.Scenario
	faulty   map[int]bool
	plan     *core.Plan
	threads  int
	stats    *kernel.Stats
}

// NewVolume builds numStripes encoded stripes and marks the given disks
// failed (transiently unavailable — nothing is repaired in place).
func NewVolume(c codes.Code, numStripes, sectorSize int, failedDisks []int, threads int, seed int64) (*Volume, error) {
	if numStripes < 1 {
		return nil, fmt.Errorf("workload: need at least one stripe")
	}
	var faultySectors []int
	for _, d := range failedDisks {
		if d < 0 || d >= c.NumStrips() {
			return nil, fmt.Errorf("workload: disk %d out of range", d)
		}
		for i := 0; i < c.NumRows(); i++ {
			faultySectors = append(faultySectors, i*c.NumStrips()+d)
		}
	}
	sc, err := codes.NewScenario(c, faultySectors)
	if err != nil {
		return nil, err
	}
	v := &Volume{
		code:     c,
		scenario: sc,
		faulty:   sc.FaultySet(),
		threads:  threads,
		stats:    &kernel.Stats{},
	}
	if len(sc.Faulty) > 0 {
		plan, err := core.BuildPlan(c, sc, core.StrategyPPM)
		if err != nil {
			return nil, fmt.Errorf("workload: failure pattern unrecoverable: %w", err)
		}
		v.plan = plan
	}
	for i := 0; i < numStripes; i++ {
		st, err := stripe.New(c.NumStrips(), c.NumRows(), sectorSize)
		if err != nil {
			return nil, err
		}
		st.FillDataRandom(seed+int64(i), codes.DataPositions(c))
		if err := decode.Encode(c, st, decode.Options{}); err != nil {
			return nil, err
		}
		// Transient unavailability: the lost sectors read as garbage.
		st.Scribble(seed+int64(1000+i), sc.Faulty)
		v.stripes = append(v.stripes, st)
	}
	return v, nil
}

// Serve runs the trace and collects per-class latencies. Each degraded
// read reconstructs only the requested sector's closure into the stripe
// and then re-loses it (stop-the-clock), so every request pays the full
// reconstruction cost, as in a system that does not persist repairs.
func (v *Volume) Serve(trace []Read) (Result, error) {
	var res Result
	buf := make([]byte, v.stripes[0].SectorSize())
	var healthyLat, repairLat []time.Duration
	var repairOps int64

	for _, rd := range trace {
		if rd.StripeIdx < 0 || rd.StripeIdx >= len(v.stripes) {
			return res, fmt.Errorf("workload: stripe %d out of range", rd.StripeIdx)
		}
		st := v.stripes[rd.StripeIdx]
		if rd.Sector < 0 || rd.Sector >= st.TotalSectors() {
			return res, fmt.Errorf("workload: sector %d out of range", rd.Sector)
		}
		res.Reads++
		if !v.faulty[rd.Sector] {
			start := time.Now()
			copy(buf, st.Sector(rd.Sector))
			healthyLat = append(healthyLat, time.Since(start))
			continue
		}
		res.Degraded++
		before := v.stats.MultXORs()
		start := time.Now()
		if err := core.ExecutePartial(v.plan, st, v.code.Field(), v.threads, v.stats, []int{rd.Sector}); err != nil {
			return res, err
		}
		copy(buf, st.Sector(rd.Sector))
		repairLat = append(repairLat, time.Since(start))
		repairOps += v.stats.MultXORs() - before
		// Re-lose the recovered sectors: the unavailability is transient
		// but not repaired by reads.
		st.Scribble(int64(res.Reads), v.scenario.Faulty)
	}

	res.Healthy = summarise(healthyLat, 0, int64(len(healthyLat))*int64(len(buf)))
	res.Repair = summarise(repairLat, repairOps, int64(len(repairLat))*int64(len(buf)))
	return res, nil
}

func summarise(lat []time.Duration, ops int64, bytes int64) LatencyStats {
	if len(lat) == 0 {
		return LatencyStats{}
	}
	sorted := append([]time.Duration(nil), lat...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	var sum time.Duration
	for _, d := range sorted {
		sum += d
	}
	pct := func(p float64) time.Duration {
		idx := int(p * float64(len(sorted)-1))
		return sorted[idx]
	}
	return LatencyStats{
		Count:            len(sorted),
		Mean:             sum / time.Duration(len(sorted)),
		P50:              pct(0.50),
		P99:              pct(0.99),
		Max:              sorted[len(sorted)-1],
		MultXORsPerOp:    float64(ops) / float64(len(sorted)),
		BytesServedTotal: bytes,
	}
}
