package workload

import (
	"testing"

	"ppm/internal/codes"
)

func TestTraces(t *testing.T) {
	u := UniformTrace(10, 64, 500, 1)
	if len(u) != 500 {
		t.Fatalf("trace length %d", len(u))
	}
	for _, r := range u {
		if r.StripeIdx < 0 || r.StripeIdx >= 10 || r.Sector < 0 || r.Sector >= 64 {
			t.Fatalf("out-of-range read %+v", r)
		}
	}
	// Deterministic under a seed.
	u2 := UniformTrace(10, 64, 500, 1)
	for i := range u {
		if u[i] != u2[i] {
			t.Fatal("trace not reproducible")
		}
	}

	z := ZipfTrace(10, 64, 2000, 2)
	counts := map[int]int{}
	for _, r := range z {
		if r.StripeIdx < 0 || r.StripeIdx >= 10 {
			t.Fatalf("zipf stripe %d out of range", r.StripeIdx)
		}
		counts[r.StripeIdx]++
	}
	if counts[0] <= counts[9] {
		t.Fatalf("zipf not skewed: hot=%d cold=%d", counts[0], counts[9])
	}
}

func TestVolumeHealthyOnly(t *testing.T) {
	lrc, err := codes.NewLRC(12, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	v, err := NewVolume(lrc, 4, 256, nil, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := v.Serve(UniformTrace(4, 17, 200, 3))
	if err != nil {
		t.Fatal(err)
	}
	if res.Degraded != 0 || res.Reads != 200 {
		t.Fatalf("result %+v", res)
	}
	if res.Healthy.Count != 200 || res.Healthy.P99 <= 0 {
		t.Fatalf("healthy stats %+v", res.Healthy)
	}
}

func TestVolumeDegradedReads(t *testing.T) {
	lrc, err := codes.NewLRC(12, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Block 2 (in local group 0) is transiently unavailable.
	v, err := NewVolume(lrc, 3, 256, []int{2}, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := v.Serve(UniformTrace(3, 17, 400, 5))
	if err != nil {
		t.Fatal(err)
	}
	if res.Degraded == 0 {
		t.Fatal("no degraded reads despite a failed block")
	}
	// LRC degraded reads use the local group only: group size 4 -> 4
	// region ops per read.
	if res.Repair.MultXORsPerOp != 4 {
		t.Fatalf("ops/read = %.1f, want 4 (local group repair)", res.Repair.MultXORsPerOp)
	}
	if res.Repair.P50 <= 0 || res.Repair.Count != res.Degraded {
		t.Fatalf("repair stats %+v", res.Repair)
	}
}

func TestVolumeRSWiderThanLRC(t *testing.T) {
	lrc, err := codes.NewLRC(12, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := codes.NewRS(17, 1, 5)
	if err != nil {
		t.Fatal(err)
	}
	lv, err := NewVolume(lrc, 2, 256, []int{0}, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	rv, err := NewVolume(rs, 2, 256, []int{0}, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	trace := []Read{{0, 0}, {1, 0}, {0, 0}}
	lres, err := lv.Serve(trace)
	if err != nil {
		t.Fatal(err)
	}
	rres, err := rv.Serve(trace)
	if err != nil {
		t.Fatal(err)
	}
	if lres.Repair.MultXORsPerOp >= rres.Repair.MultXORsPerOp {
		t.Fatalf("LRC repair width %.1f not below RS %.1f",
			lres.Repair.MultXORsPerOp, rres.Repair.MultXORsPerOp)
	}
}

func TestVolumeValidation(t *testing.T) {
	lrc, err := codes.NewLRC(6, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewVolume(lrc, 0, 256, nil, 1, 1); err == nil {
		t.Error("zero stripes accepted")
	}
	if _, err := NewVolume(lrc, 1, 256, []int{99}, 1, 1); err == nil {
		t.Error("out-of-range disk accepted")
	}
	v, err := NewVolume(lrc, 1, 256, nil, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := v.Serve([]Read{{5, 0}}); err == nil {
		t.Error("out-of-range stripe read accepted")
	}
	if _, err := v.Serve([]Read{{0, 999}}); err == nil {
		t.Error("out-of-range sector read accepted")
	}
}

// TestVolumeCorrectContent: a degraded read returns the original bytes.
func TestVolumeCorrectContent(t *testing.T) {
	sd, err := codes.NewSD(6, 4, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Reference stripe with the same seed the volume uses.
	v, err := NewVolume(sd, 1, 64, []int{1}, 1, 42)
	if err != nil {
		t.Fatal(err)
	}
	// Serve a degraded read of sector (row 2, disk 1) = 2*6+1 = 13.
	res, err := v.Serve([]Read{{0, 13}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Degraded != 1 {
		t.Fatalf("expected one degraded read, got %+v", res)
	}
}

func BenchmarkServeDegradedTrace(b *testing.B) {
	lrc, err := codes.NewLRC(12, 3, 2)
	if err != nil {
		b.Fatal(err)
	}
	v, err := NewVolume(lrc, 4, 4096, []int{2}, 2, 1)
	if err != nil {
		b.Fatal(err)
	}
	trace := UniformTrace(4, 17, 200, 9)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := v.Serve(trace); err != nil {
			b.Fatal(err)
		}
	}
}
