package bitmatrix

// Derivative scheduling (Plank's schedule-optimisation line of work,
// e.g. CSHR): instead of computing every output packet as a fresh XOR
// of its input packets, compute it as a delta from an already-computed
// output packet when their input sets overlap heavily — the XOR count
// drops from |S_v| to |S_u Δ S_v| + 1. The greedy construction below is
// a directed MST over the output rows (Prim's algorithm with the
// "from scratch" cost as the virtual root edge).
//
// Before the MST runs, a common-subexpression pass hunts for input
// *pairs* shared by three or more output rows and hoists each into a
// temporary packet (Huang/Li-style XOR CSE): a pair appearing in k rows
// costs 2k XORs inline but 2 + k through a temp, so every extraction
// with k >= 3 saves k - 2 packet XORs, and extracted temps can
// themselves pair up in later rounds. Optimize builds both programs and
// keeps the cheaper, so adding CSE can never regress a schedule.

// scheduledOp is one step of an optimised program.
type scheduledOp struct {
	dst     int   // output packet index
	from    int   // -1: from scratch; else: start as a copy of output `from`
	xorCols []int // source ids to XOR in (input packets, or temps at id >= inCount)
}

// Schedule is an optimised XOR program equivalent to a BitMatrix apply.
type Schedule struct {
	rows, cols, w int
	inCount       int // cols * w; source ids >= inCount address temps
	// temps[k] defines temporary packet (inCount + k) as the XOR of two
	// earlier sources (inputs or lower-numbered temps), computed before
	// the output ops run.
	temps [][2]int
	ops   []scheduledOp
	xors  int
}

// Optimize builds a derivative schedule for the bit matrix: the better
// of plain Prim and CSE-then-Prim.
func (bm *BitMatrix) Optimize() *Schedule {
	plain := bm.prim(bm.schedule, nil)
	if cse := bm.optimizeCSE(); cse != nil && cse.xors < plain.xors {
		return cse
	}
	return plain
}

// optimizeCSE extracts shared input pairs into temps, then schedules
// the rewritten rows. Returns nil when no pair clears the
// profitability bar.
func (bm *BitMatrix) optimizeCSE() *Schedule {
	inCount := bm.cols * bm.w
	// Deep-copy the row sets: extraction rewrites them in place, and
	// bm.schedule must stay untouched for BitMatrix.Apply and for the
	// plain-Prim arm.
	sets := make([][]int, len(bm.schedule))
	for i, s := range bm.schedule {
		sets[i] = append([]int(nil), s...)
	}
	var temps [][2]int
	// maxTemps bounds the greedy loop; each extraction shrinks the total
	// set size by >= 1, so this is belt and braces, not a real limit.
	maxTemps := bm.ones
	for len(temps) < maxTemps {
		a, b, freq := bestPair(sets)
		// 2 XORs build the temp, each use saves 1: profitable iff freq >= 3.
		if freq < 3 {
			break
		}
		id := inCount + len(temps)
		temps = append(temps, [2]int{a, b})
		for i, s := range sets {
			if containsBoth(s, a, b) {
				sets[i] = substitutePair(s, a, b, id)
			}
		}
	}
	if len(temps) == 0 {
		return nil
	}
	s := bm.prim(sets, temps)
	return s
}

// bestPair scans every row's source set for the pair occurring in the
// most rows. O(Σ|set|²) over sets that shrink as extraction proceeds —
// fine at the w <= 32, r*w <= a few hundred scale bit matrices have.
func bestPair(sets [][]int) (a, b, freq int) {
	counts := make(map[[2]int]int)
	for _, s := range sets {
		for i := 0; i < len(s); i++ {
			for j := i + 1; j < len(s); j++ {
				counts[[2]int{s[i], s[j]}]++
			}
		}
	}
	best := [2]int{-1, -1}
	for p, c := range counts {
		// Deterministic tie-break on the pair itself so schedules are
		// reproducible run to run.
		if c > freq || (c == freq && (p[0] < best[0] || (p[0] == best[0] && p[1] < best[1]))) {
			best, freq = p, c
		}
	}
	return best[0], best[1], freq
}

// containsBoth reports whether the sorted set holds both ids.
func containsBoth(s []int, a, b int) bool {
	na, nb := false, false
	for _, x := range s {
		if x == a {
			na = true
		} else if x == b {
			nb = true
		}
	}
	return na && nb
}

// substitutePair removes a and b from the sorted set and inserts id,
// keeping the set sorted.
func substitutePair(s []int, a, b, id int) []int {
	out := s[:0]
	for _, x := range s {
		if x != a && x != b {
			out = append(out, x)
		}
	}
	i := len(out)
	out = append(out, id)
	for i > 0 && out[i-1] > id {
		out[i], out[i-1] = out[i-1], out[i]
		i--
	}
	return out
}

// prim runs the derivative-MST construction over the given row sets
// (which may reference temps) and assembles the schedule. Each temp
// costs 2 XORs (a copy plus an XOR) on top of the MST's own count.
func (bm *BitMatrix) prim(rowSets [][]int, temps [][2]int) *Schedule {
	n := len(rowSets)
	s := &Schedule{
		rows:    bm.rows,
		cols:    bm.cols,
		w:       bm.w,
		inCount: bm.cols * bm.w,
		temps:   temps,
		xors:    2 * len(temps),
	}
	sets := rowSets

	// Prim over dense costs. cost(u->v) = |S_u Δ S_v| + 1 (the +1 is
	// the initial copy/XOR of u into v); root cost = |S_v|.
	const root = -1
	inTree := make([]bool, n)
	bestCost := make([]int, n)
	bestFrom := make([]int, n)
	for v := range bestCost {
		bestCost[v] = len(sets[v])
		bestFrom[v] = root
	}
	for range sets {
		// Pick the cheapest unattached row.
		v := -1
		for u := range sets {
			if !inTree[u] && (v < 0 || bestCost[u] < bestCost[v]) {
				v = u
			}
		}
		if v < 0 {
			break
		}
		inTree[v] = true
		// symmetricDiff merges two sorted lists, so delta is sorted and
		// freshly allocated.
		delta := symmetricDiff(sets[v], parentSet(sets, bestFrom[v]))
		s.ops = append(s.ops, scheduledOp{dst: v, from: bestFrom[v], xorCols: delta})
		s.xors += len(delta)
		if bestFrom[v] >= 0 {
			s.xors++ // the copy of the parent output
		}
		// Relax neighbours.
		for u := range sets {
			if inTree[u] {
				continue
			}
			if c := diffSize(sets[u], sets[v]) + 1; c < bestCost[u] {
				bestCost[u] = c
				bestFrom[u] = v
			}
		}
	}
	return s
}

func parentSet(sets [][]int, from int) []int {
	if from < 0 {
		return nil
	}
	return sets[from]
}

// symmetricDiff of two sorted int slices; the result is sorted.
func symmetricDiff(a, b []int) []int {
	var out []int
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			i++
			j++
		case a[i] < b[j]:
			out = append(out, a[i])
			i++
		default:
			out = append(out, b[j])
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

func diffSize(a, b []int) int {
	n := 0
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			i++
			j++
		case a[i] < b[j]:
			n++
			i++
		default:
			n++
			j++
		}
	}
	return n + (len(a) - i) + (len(b) - j)
}

// XORs returns the packet-XOR count of one Apply — compare with the
// unoptimised BitMatrix.Ones().
func (s *Schedule) XORs() int { return s.xors }

// Temps returns the number of common-subexpression temporaries the
// schedule materialises per Apply.
func (s *Schedule) Temps() int { return len(s.temps) }

// source resolves a source id to its packet: an input, or a temp.
func (s *Schedule) source(in, tmp [][]byte, id int) []byte {
	if id < s.inCount {
		return in[id]
	}
	return tmp[id-s.inCount]
}

// Apply runs the program: out = schedule(in), overwriting out. Unlike
// BitMatrix.Apply it cannot accumulate, because derivative steps reuse
// freshly-written outputs. A CSE schedule materialises its temporary
// packets first; this back end exists for schedule-quality study, so
// the temp buffers are plainly allocated per call rather than pooled.
func (s *Schedule) Apply(in, out [][]byte) {
	if len(in) != s.cols*s.w || len(out) != s.rows*s.w {
		panic("bitmatrix: schedule shape mismatch")
	}
	var tmp [][]byte
	if len(s.temps) > 0 {
		tmp = AllocPackets(len(s.temps), len(in[0]))
		for k, def := range s.temps {
			dst := tmp[k]
			copy(dst, s.source(in, tmp, def[0]))
			xorBytes(dst, s.source(in, tmp, def[1]))
		}
	}
	for _, op := range s.ops {
		dst := out[op.dst]
		if op.from >= 0 {
			copy(dst, out[op.from])
		} else {
			for i := range dst {
				dst[i] = 0
			}
		}
		for _, c := range op.xorCols {
			xorBytes(dst, s.source(in, tmp, c))
		}
	}
}
