package bitmatrix

import "sort"

// Derivative scheduling (Plank's schedule-optimisation line of work,
// e.g. CSHR): instead of computing every output packet as a fresh XOR
// of its input packets, compute it as a delta from an already-computed
// output packet when their input sets overlap heavily — the XOR count
// drops from |S_v| to |S_u Δ S_v| + 1. The greedy construction below is
// a directed MST over the output rows (Prim's algorithm with the
// "from scratch" cost as the virtual root edge).

// scheduledOp is one step of an optimised program.
type scheduledOp struct {
	dst     int   // output packet index
	from    int   // -1: from scratch; else: start as a copy of output `from`
	xorCols []int // input packets to XOR in
}

// Schedule is an optimised XOR program equivalent to a BitMatrix apply.
type Schedule struct {
	rows, cols, w int
	ops           []scheduledOp
	xors          int
}

// Optimize builds a derivative schedule for the bit matrix.
func (bm *BitMatrix) Optimize() *Schedule {
	n := len(bm.schedule)
	s := &Schedule{rows: bm.rows, cols: bm.cols, w: bm.w}

	// Input sets per output row, as sorted slices (they already are).
	sets := make([][]int, n)
	for i := range sets {
		sets[i] = bm.schedule[i]
	}

	// Prim over dense costs. cost(u->v) = |S_u Δ S_v| + 1 (the +1 is
	// the initial copy/XOR of u into v); root cost = |S_v|.
	const root = -1
	inTree := make([]bool, n)
	bestCost := make([]int, n)
	bestFrom := make([]int, n)
	for v := range bestCost {
		bestCost[v] = len(sets[v])
		bestFrom[v] = root
	}
	for range sets {
		// Pick the cheapest unattached row.
		v := -1
		for u := range sets {
			if !inTree[u] && (v < 0 || bestCost[u] < bestCost[v]) {
				v = u
			}
		}
		if v < 0 {
			break
		}
		inTree[v] = true
		delta := append([]int(nil), symmetricDiff(sets[v], parentSet(sets, bestFrom[v]))...)
		sort.Ints(delta)
		s.ops = append(s.ops, scheduledOp{dst: v, from: bestFrom[v], xorCols: delta})
		s.xors += len(delta)
		if bestFrom[v] >= 0 {
			s.xors++ // the copy of the parent output
		}
		// Relax neighbours.
		for u := range sets {
			if inTree[u] {
				continue
			}
			if c := diffSize(sets[u], sets[v]) + 1; c < bestCost[u] {
				bestCost[u] = c
				bestFrom[u] = v
			}
		}
	}
	return s
}

func parentSet(sets [][]int, from int) []int {
	if from < 0 {
		return nil
	}
	return sets[from]
}

// symmetricDiff of two sorted int slices.
func symmetricDiff(a, b []int) []int {
	var out []int
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			i++
			j++
		case a[i] < b[j]:
			out = append(out, a[i])
			i++
		default:
			out = append(out, b[j])
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

func diffSize(a, b []int) int {
	n := 0
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			i++
			j++
		case a[i] < b[j]:
			n++
			i++
		default:
			n++
			j++
		}
	}
	return n + (len(a) - i) + (len(b) - j)
}

// XORs returns the packet-XOR count of one Apply — compare with the
// unoptimised BitMatrix.Ones().
func (s *Schedule) XORs() int { return s.xors }

// Apply runs the program: out = schedule(in), overwriting out. Unlike
// BitMatrix.Apply it cannot accumulate, because derivative steps reuse
// freshly-written outputs.
func (s *Schedule) Apply(in, out [][]byte) {
	if len(in) != s.cols*s.w || len(out) != s.rows*s.w {
		panic("bitmatrix: schedule shape mismatch")
	}
	for _, op := range s.ops {
		dst := out[op.dst]
		if op.from >= 0 {
			copy(dst, out[op.from])
		} else {
			for i := range dst {
				dst[i] = 0
			}
		}
		for _, c := range op.xorCols {
			xorBytes(dst, in[c])
		}
	}
}
