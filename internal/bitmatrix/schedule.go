package bitmatrix

import "fmt"

// Derivative scheduling (Plank's schedule-optimisation line of work,
// e.g. CSHR): instead of computing every output packet as a fresh XOR
// of its input packets, compute it as a delta from an already-computed
// output packet when their input sets overlap heavily — the XOR count
// drops from |S_v| to |S_u Δ S_v| + 1. The greedy construction below is
// a directed MST over the output rows (Prim's algorithm with the
// "from scratch" cost as the virtual root edge).
//
// Before the MST runs, a common-subexpression pass hunts for input
// *pairs* shared by three or more output rows and hoists each into a
// temporary packet (Huang/Li-style XOR CSE): a pair appearing in k rows
// costs 2k XORs inline but 2 + k through a temp, so every extraction
// with k >= 3 saves k - 2 packet XORs, and extracted temps can
// themselves pair up in later rounds. ScheduleSets builds both programs
// and keeps the cheaper, so adding CSE can never regress a schedule.
//
// The scheduler is deliberately generic over "source sets": a source id
// below InCount names an input, ids at InCount and above name CSE
// temps, and nothing in the construction cares what the sources are.
// The bit-packet back end in this package feeds it bit rows; the
// xorplan word back end feeds it polynomial-ring derived regions. Both
// execute the same SetSchedule shape against their own storage.

// SetOp is one output step of a scheduled XOR program: compute row Dst
// as the XOR of the Srcs, starting from a copy of previously computed
// row From (or from nothing when From is -1).
type SetOp struct {
	Dst  int
	From int
	// Srcs are the source ids XORed into the destination: inputs below
	// InCount, CSE temps at InCount and above.
	Srcs []int
}

// SetSchedule is an optimised XOR program over abstract source sets:
// first the Temps are materialised in order (each the XOR of two
// earlier sources), then the Ops run in order. It is produced by
// ScheduleSets and executed by the packet back end (Schedule.Apply)
// and the word back end (xorplan).
type SetSchedule struct {
	// Rows is the output row count the program computes.
	Rows int
	// InCount is the number of input sources; ids >= InCount are temps.
	InCount int
	// Temps[k] defines temporary (InCount + k) as the XOR of two earlier
	// sources (inputs or lower-numbered temps).
	Temps [][2]int
	Ops   []SetOp
	// XORCount is the packet-XOR cost metric of one run: 2 per temp
	// (copy + XOR), |Srcs| per op, +1 per derivative op for the copy.
	XORCount int
}

// maxCSESourceTotal bounds the CSE pass: bestPair is O(Σ|set|²) per
// round, so past this total source count the pass is skipped and plain
// Prim used — correctness never depends on CSE, only the XOR count.
const maxCSESourceTotal = 1 << 14

// ScheduleSets builds the optimised XOR program for the given row
// sets: the better of plain Prim and CSE-then-Prim. Every set must be
// sorted ascending with ids in [0, inCount).
func ScheduleSets(rowSets [][]int, inCount int) *SetSchedule {
	plain := primSets(rowSets, nil, inCount)
	if cse := cseSets(rowSets, inCount); cse != nil && cse.XORCount < plain.XORCount {
		return cse
	}
	return plain
}

// cseSets extracts shared input pairs into temps, then schedules the
// rewritten rows. Returns nil when no pair clears the profitability bar
// or the sets are too large for the quadratic pair scan.
func cseSets(rowSets [][]int, inCount int) *SetSchedule {
	total := 0
	for _, s := range rowSets {
		total += len(s)
	}
	if total > maxCSESourceTotal {
		return nil
	}
	// Deep-copy the row sets: extraction rewrites them in place, and the
	// caller's sets must stay untouched for the plain-Prim arm.
	sets := make([][]int, len(rowSets))
	for i, s := range rowSets {
		sets[i] = append([]int(nil), s...)
	}
	var temps [][2]int
	// maxTemps bounds the greedy loop; each extraction shrinks the total
	// set size by >= 1, so this is belt and braces, not a real limit.
	maxTemps := total
	for len(temps) < maxTemps {
		a, b, freq := bestPair(sets)
		// 2 XORs build the temp, each use saves 1: profitable iff freq >= 3.
		if freq < 3 {
			break
		}
		id := inCount + len(temps)
		temps = append(temps, [2]int{a, b})
		for i, s := range sets {
			if containsBoth(s, a, b) {
				sets[i] = substitutePair(s, a, b, id)
			}
		}
	}
	if len(temps) == 0 {
		return nil
	}
	return primSets(sets, temps, inCount)
}

// bestPair scans every row's source set for the pair occurring in the
// most rows. O(Σ|set|²) over sets that shrink as extraction proceeds —
// fine at the scale maxCSESourceTotal admits.
func bestPair(sets [][]int) (a, b, freq int) {
	counts := make(map[[2]int]int)
	for _, s := range sets {
		for i := 0; i < len(s); i++ {
			for j := i + 1; j < len(s); j++ {
				counts[[2]int{s[i], s[j]}]++
			}
		}
	}
	best := [2]int{-1, -1}
	for p, c := range counts {
		// Deterministic tie-break on the pair itself so schedules are
		// reproducible run to run.
		if c > freq || (c == freq && (p[0] < best[0] || (p[0] == best[0] && p[1] < best[1]))) {
			best, freq = p, c
		}
	}
	return best[0], best[1], freq
}

// containsBoth reports whether the sorted set holds both ids.
func containsBoth(s []int, a, b int) bool {
	na, nb := false, false
	for _, x := range s {
		if x == a {
			na = true
		} else if x == b {
			nb = true
		}
	}
	return na && nb
}

// substitutePair removes a and b from the sorted set and inserts id,
// keeping the set sorted.
func substitutePair(s []int, a, b, id int) []int {
	out := s[:0]
	for _, x := range s {
		if x != a && x != b {
			out = append(out, x)
		}
	}
	i := len(out)
	out = append(out, id)
	for i > 0 && out[i-1] > id {
		out[i], out[i-1] = out[i-1], out[i]
		i--
	}
	return out
}

// primSets runs the derivative-MST construction over the given row sets
// (which may reference temps) and assembles the program. Each temp
// costs 2 XORs (a copy plus an XOR) on top of the MST's own count.
func primSets(rowSets [][]int, temps [][2]int, inCount int) *SetSchedule {
	n := len(rowSets)
	p := &SetSchedule{
		Rows:     n,
		InCount:  inCount,
		Temps:    temps,
		XORCount: 2 * len(temps),
	}
	sets := rowSets

	// Prim over dense costs. cost(u->v) = |S_u Δ S_v| + 1 (the +1 is
	// the initial copy/XOR of u into v); root cost = |S_v|.
	const root = -1
	inTree := make([]bool, n)
	bestCost := make([]int, n)
	bestFrom := make([]int, n)
	for v := range bestCost {
		bestCost[v] = len(sets[v])
		bestFrom[v] = root
	}
	for range sets {
		// Pick the cheapest unattached row.
		v := -1
		for u := range sets {
			if !inTree[u] && (v < 0 || bestCost[u] < bestCost[v]) {
				v = u
			}
		}
		if v < 0 {
			break
		}
		inTree[v] = true
		// symmetricDiff merges two sorted lists, so delta is sorted and
		// freshly allocated.
		delta := symmetricDiff(sets[v], parentSet(sets, bestFrom[v]))
		p.Ops = append(p.Ops, SetOp{Dst: v, From: bestFrom[v], Srcs: delta})
		p.XORCount += len(delta)
		if bestFrom[v] >= 0 {
			p.XORCount++ // the copy of the parent output
		}
		// Relax neighbours.
		for u := range sets {
			if inTree[u] {
				continue
			}
			if c := diffSize(sets[u], sets[v]) + 1; c < bestCost[u] {
				bestCost[u] = c
				bestFrom[u] = v
			}
		}
	}
	return p
}

func parentSet(sets [][]int, from int) []int {
	if from < 0 {
		return nil
	}
	return sets[from]
}

// symmetricDiff of two sorted int slices; the result is sorted.
func symmetricDiff(a, b []int) []int {
	var out []int
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			i++
			j++
		case a[i] < b[j]:
			out = append(out, a[i])
			i++
		default:
			out = append(out, b[j])
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

func diffSize(a, b []int) int {
	n := 0
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			i++
			j++
		case a[i] < b[j]:
			n++
			i++
		default:
			n++
			j++
		}
	}
	return n + (len(a) - i) + (len(b) - j)
}

// HasDerivative reports whether any op starts from a previously
// computed row. Derivative programs can only run in overwrite mode:
// accumulating into dirty outputs would fold the dirt into children.
func (p *SetSchedule) HasDerivative() bool {
	for _, op := range p.Ops {
		if op.From >= 0 {
			return true
		}
	}
	return false
}

// Validate checks the program against the executor's arenas before any
// packet is touched: every temp may reference only inputs and
// *earlier* temps (a temp referencing a later temp would read an
// unwritten — or, with a pooled arena, stale — packet), every op
// source must be inside the input + temp id space, every derivative
// parent must be a previously written row, and every row must be
// written exactly once.
func (p *SetSchedule) Validate() error {
	if p.InCount < 0 || p.Rows < 0 {
		return fmt.Errorf("bitmatrix: negative shape (%d rows, %d inputs)", p.Rows, p.InCount)
	}
	for t, def := range p.Temps {
		for _, s := range def {
			if s < 0 || s >= p.InCount+t {
				return fmt.Errorf("bitmatrix: temp %d references source %d, outside the %d inputs and %d earlier temps", t, s, p.InCount, t)
			}
		}
	}
	limit := p.InCount + len(p.Temps)
	written := make([]bool, p.Rows)
	for oi, op := range p.Ops {
		if op.Dst < 0 || op.Dst >= p.Rows {
			return fmt.Errorf("bitmatrix: op %d writes row %d of %d", oi, op.Dst, p.Rows)
		}
		if written[op.Dst] {
			return fmt.Errorf("bitmatrix: op %d writes row %d twice", oi, op.Dst)
		}
		if op.From != -1 {
			if op.From < 0 || op.From >= p.Rows {
				return fmt.Errorf("bitmatrix: op %d derives from row %d of %d", oi, op.From, p.Rows)
			}
			if !written[op.From] {
				return fmt.Errorf("bitmatrix: op %d derives from row %d before it is written", oi, op.From)
			}
		}
		for _, s := range op.Srcs {
			if s < 0 || s >= limit {
				return fmt.Errorf("bitmatrix: op %d references source %d, outside the %d inputs and %d temps", oi, s, p.InCount, len(p.Temps))
			}
		}
		written[op.Dst] = true
	}
	for r, w := range written {
		if !w {
			return fmt.Errorf("bitmatrix: row %d is never written", r)
		}
	}
	return nil
}

// Schedule is an optimised XOR program equivalent to a BitMatrix apply,
// bound to the bit-packet layout.
type Schedule struct {
	rows, cols, w int
	prog          *SetSchedule
}

// Optimize builds a derivative schedule for the bit matrix: the better
// of plain Prim and CSE-then-Prim over its bit rows.
func (bm *BitMatrix) Optimize() *Schedule {
	return &Schedule{rows: bm.rows, cols: bm.cols, w: bm.w,
		prog: ScheduleSets(bm.schedule, bm.cols*bm.w)}
}

// prim is the plain-Prim arm without CSE, kept as a comparison baseline
// for schedule-quality tests.
func (bm *BitMatrix) prim(rowSets [][]int, temps [][2]int) *Schedule {
	return &Schedule{rows: bm.rows, cols: bm.cols, w: bm.w,
		prog: primSets(rowSets, temps, bm.cols*bm.w)}
}

// XORs returns the packet-XOR count of one Apply — compare with the
// unoptimised BitMatrix.Ones().
func (s *Schedule) XORs() int { return s.prog.XORCount }

// Temps returns the number of common-subexpression temporaries the
// schedule materialises per Apply.
func (s *Schedule) Temps() int { return len(s.prog.Temps) }

// Program returns the underlying abstract XOR program.
func (s *Schedule) Program() *SetSchedule { return s.prog }

// source resolves a source id to its packet: an input, or a temp.
func (s *Schedule) source(in, tmp [][]byte, id int) []byte {
	if id < s.prog.InCount {
		return in[id]
	}
	return tmp[id-s.prog.InCount]
}

// Apply runs the program: out = schedule(in), overwriting out. Unlike
// BitMatrix.Apply it cannot accumulate, because derivative steps reuse
// freshly-written outputs. A CSE schedule materialises its temporary
// packets first; this back end exists for schedule-quality study, so
// the temp buffers are plainly allocated per call rather than pooled.
// The program is validated against the packet and temp arenas before
// anything is written — a malformed schedule (e.g. a temp referencing
// a later temp) panics instead of reading stale memory.
func (s *Schedule) Apply(in, out [][]byte) {
	if len(in) != s.cols*s.w || len(out) != s.rows*s.w {
		panic("bitmatrix: schedule shape mismatch")
	}
	if err := s.prog.Validate(); err != nil {
		panic(err)
	}
	var tmp [][]byte
	if len(s.prog.Temps) > 0 {
		tmp = AllocPackets(len(s.prog.Temps), len(in[0]))
		for k, def := range s.prog.Temps {
			dst := tmp[k]
			copy(dst, s.source(in, tmp, def[0]))
			xorBytes(dst, s.source(in, tmp, def[1]))
		}
	}
	for _, op := range s.prog.Ops {
		dst := out[op.Dst]
		if op.From >= 0 {
			copy(dst, out[op.From])
		} else {
			for i := range dst {
				dst[i] = 0
			}
		}
		for _, c := range op.Srcs {
			xorBytes(dst, s.source(in, tmp, c))
		}
	}
}
