// Package bitmatrix implements the Cauchy-Reed-Solomon bit-matrix
// technique of the paper's reference [8] (Blaum et al., "An XOR-Based
// Erasure-Resilient Coding Scheme", the scheme behind Jerasure's CRS
// path): every GF(2^w) coefficient expands into a w x w binary matrix,
// symbols into w bit-packets, and the whole product becomes pure XORs
// of byte regions — no multiplication tables at all.
//
// It is provided as an alternative kernel back end for study: the
// table-driven gf back end and this XOR-schedule back end compute the
// same algebra over different data layouts (word-interleaved vs
// bit-packetised), and the benchmarks let one measure the classic
// trade-off — bit matrices win when coefficients are sparse in the bit
// domain, tables win when dense. The equivalence tests pin that both
// back ends implement the same field arithmetic.
package bitmatrix

import (
	"fmt"

	"ppm/internal/gf"
	"ppm/internal/matrix"
)

// BitMatrix is the binary expansion of an r x c matrix over GF(2^w):
// w*r rows by w*c columns over GF(2).
type BitMatrix struct {
	rows, cols int // symbol-level dimensions
	w          int
	// bits[i] holds bit-row i as column-index list (the XOR schedule):
	// output packet i = XOR of the listed input packets.
	schedule [][]int
	ones     int
}

// Expand lowers a coefficient matrix into its bit-matrix form. The
// binary block for coefficient a has column j equal to the bit pattern
// of a * x^j in GF(2^w) — multiplication by a is GF(2)-linear in the
// bits, which is the whole trick.
func Expand(f gf.Field, m *matrix.Matrix) *BitMatrix {
	w := f.W()
	bm := &BitMatrix{
		rows:     m.Rows(),
		cols:     m.Cols(),
		w:        w,
		schedule: make([][]int, m.Rows()*w),
	}
	for r := 0; r < m.Rows(); r++ {
		for c := 0; c < m.Cols(); c++ {
			a := m.At(r, c)
			if a == 0 {
				continue
			}
			for j := 0; j < w; j++ {
				col := f.Mul(a, uint32(1)<<uint(j))
				for i := 0; i < w; i++ {
					if col>>uint(i)&1 == 1 {
						bitRow := r*w + i
						bm.schedule[bitRow] = append(bm.schedule[bitRow], c*w+j)
						bm.ones++
					}
				}
			}
		}
	}
	return bm
}

// Rows returns the symbol-level row count.
func (bm *BitMatrix) Rows() int { return bm.rows }

// Cols returns the symbol-level column count.
func (bm *BitMatrix) Cols() int { return bm.cols }

// W returns the word size in bits.
func (bm *BitMatrix) W() int { return bm.w }

// Ones returns the number of 1 entries — each is one packet XOR, the
// cost metric Jerasure reports ("XORs per coded word" is Ones/w per
// output symbol).
func (bm *BitMatrix) Ones() int { return bm.ones }

// BitRows returns the total bit-row count (Rows * W).
func (bm *BitMatrix) BitRows() int { return len(bm.schedule) }

// BitRow returns bit-row i as a copy of its input-packet column list —
// output packet i is the XOR of exactly these input packets. This is
// the ground truth the symbolic plan verifier compares optimised
// schedules against.
func (bm *BitMatrix) BitRow(i int) []int {
	return append([]int(nil), bm.schedule[i]...)
}

// Apply computes out ^= BM * in over bit-packets: in holds cols*w input
// packets, out holds rows*w output packets, all of equal length.
// Callers wanting out = BM * in must zero out first.
func (bm *BitMatrix) Apply(in, out [][]byte) {
	if len(in) != bm.cols*bm.w || len(out) != bm.rows*bm.w {
		panic(fmt.Sprintf("bitmatrix: %d/%d packets against %dx%d (w=%d)",
			len(in), len(out), bm.rows, bm.cols, bm.w))
	}
	for i, cols := range bm.schedule {
		dst := out[i]
		for _, c := range cols {
			xorBytes(dst, in[c])
		}
	}
}

func xorBytes(dst, src []byte) {
	n := len(dst) &^ 7
	for i := 0; i < n; i += 8 {
		d := dst[i : i+8 : i+8]
		s := src[i : i+8 : i+8]
		d[0] ^= s[0]
		d[1] ^= s[1]
		d[2] ^= s[2]
		d[3] ^= s[3]
		d[4] ^= s[4]
		d[5] ^= s[5]
		d[6] ^= s[6]
		d[7] ^= s[7]
	}
	for i := n; i < len(dst); i++ {
		dst[i] ^= src[i]
	}
}

// PackSymbols converts a symbol slice (one uint32 per symbol, w
// significant bits) into w bit-packets of len(symbols)/8 bytes:
// bit t of packet i = bit i of symbol t. len(symbols) must be a
// multiple of 8. This is the layout conversion between the word
// back end and the packet back end; production systems pick one layout
// and never convert, but the equivalence tests need the bridge.
func PackSymbols(symbols []uint32, w int) ([][]byte, error) {
	if len(symbols)%8 != 0 {
		return nil, fmt.Errorf("bitmatrix: %d symbols not a multiple of 8", len(symbols))
	}
	packets := make([][]byte, w)
	plen := len(symbols) / 8
	for i := range packets {
		packets[i] = make([]byte, plen)
	}
	for t, sym := range symbols {
		for i := 0; i < w; i++ {
			if sym>>uint(i)&1 == 1 {
				packets[i][t/8] |= 1 << uint(t%8)
			}
		}
	}
	return packets, nil
}

// UnpackSymbols is the inverse of PackSymbols.
func UnpackSymbols(packets [][]byte, w int) []uint32 {
	if len(packets) != w {
		panic(fmt.Sprintf("bitmatrix: %d packets for w=%d", len(packets), w))
	}
	count := len(packets[0]) * 8
	symbols := make([]uint32, count)
	for i := 0; i < w; i++ {
		for t := 0; t < count; t++ {
			if packets[i][t/8]>>uint(t%8)&1 == 1 {
				symbols[t] |= 1 << uint(i)
			}
		}
	}
	return symbols
}

// AllocPackets allocates count packets of size bytes.
func AllocPackets(count, size int) [][]byte {
	backing := make([]byte, count*size)
	packets := make([][]byte, count)
	for i := range packets {
		packets[i] = backing[i*size : (i+1)*size : (i+1)*size]
	}
	return packets
}
