package bitmatrix

import (
	"bytes"
	"math/rand"
	"testing"

	"ppm/internal/gf"
	"ppm/internal/matrix"
)

// TestScheduleEquivalence: the optimised program computes exactly what
// the flat bit-matrix apply computes.
func TestScheduleEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(191))
	f := gf.GF8
	for trial := 0; trial < 10; trial++ {
		rows := 1 + rng.Intn(3)
		cols := 1 + rng.Intn(6)
		m := randCoeffMatrix(rng, f, rows, cols)
		bm := Expand(f, m)
		sched := bm.Optimize()

		in := AllocPackets(cols*8, 16)
		for _, p := range in {
			rng.Read(p)
		}
		flat := AllocPackets(rows*8, 16)
		bm.Apply(in, flat)
		opt := AllocPackets(rows*8, 16)
		// Dirty the output to prove Apply overwrites.
		for _, p := range opt {
			rng.Read(p)
		}
		sched.Apply(in, opt)

		for i := range flat {
			if !bytes.Equal(flat[i], opt[i]) {
				t.Fatalf("trial %d: packet %d differs", trial, i)
			}
		}
	}
}

// TestScheduleSavesXORs: on a dense coefficient matrix with repeated
// coefficients down a column, derivative scheduling must beat the flat
// schedule (identical rows cost 1 copy instead of |S| XORs).
func TestScheduleSavesXORs(t *testing.T) {
	f := gf.GF8
	// Two identical rows: the second is a pure copy of the first.
	m := matrix.New(f, 2, 6)
	for j := 0; j < 6; j++ {
		m.Set(0, j, uint32(3+j))
		m.Set(1, j, uint32(3+j))
	}
	bm := Expand(f, m)
	sched := bm.Optimize()
	if sched.XORs() >= bm.Ones() {
		t.Fatalf("schedule XORs %d not below flat %d", sched.XORs(), bm.Ones())
	}
}

// TestScheduleDenseRandomNeverWorse: the root edge of the MST is the
// from-scratch cost, so the schedule can never exceed Ones() by more
// than the copies it introduces, and the greedy always accepts a copy
// only when it wins; assert it never loses on random matrices.
func TestScheduleDenseRandomNeverWorse(t *testing.T) {
	rng := rand.New(rand.NewSource(192))
	f := gf.GF8
	for trial := 0; trial < 20; trial++ {
		m := randCoeffMatrix(rng, f, 2+rng.Intn(3), 2+rng.Intn(5))
		bm := Expand(f, m)
		if sched := bm.Optimize(); sched.XORs() > bm.Ones() {
			t.Fatalf("trial %d: schedule %d worse than flat %d", trial, sched.XORs(), bm.Ones())
		}
	}
}

func TestScheduleShapePanics(t *testing.T) {
	bm := Expand(gf.GF8, matrix.Identity(gf.GF8, 2))
	sched := bm.Optimize()
	defer func() {
		if recover() == nil {
			t.Fatal("shape mismatch did not panic")
		}
	}()
	sched.Apply(AllocPackets(3, 8), AllocPackets(16, 8))
}

// TestScheduleCSEExtractsSharedPairs: a hand-built bit matrix whose
// rows share an input pair must hoist it into a temp, beat the plain
// MST count, and still compute the right packets. Built directly (the
// test is in-package) so the pair structure is exact.
func TestScheduleCSEExtractsSharedPairs(t *testing.T) {
	// w=1, 6 inputs, 5 outputs; pair {0,1} appears in every row, plus a
	// distinct extra input per row — plain Prim gains nothing (each pair
	// of rows differs in 2 inputs, same as from-scratch cost 3), while
	// CSE pays 2 XORs for t=in0^in1 and then each row is t^extra.
	bm := &BitMatrix{rows: 5, cols: 6, w: 1, schedule: [][]int{
		{0, 1, 2}, {0, 1, 3}, {0, 1, 4}, {0, 1, 5}, {0, 1, 2},
	}, ones: 15}
	plain := bm.prim(bm.schedule, nil)
	sched := bm.Optimize()
	if sched.Temps() == 0 {
		t.Fatal("CSE extracted no temps from a 5-way shared pair")
	}
	if sched.XORs() >= plain.XORs() {
		t.Fatalf("CSE schedule %d XORs, plain MST %d", sched.XORs(), plain.XORs())
	}

	rng := rand.New(rand.NewSource(194))
	in := AllocPackets(6, 32)
	for _, p := range in {
		rng.Read(p)
	}
	want := AllocPackets(5, 32)
	bm.Apply(in, want)
	got := AllocPackets(5, 32)
	for _, p := range got {
		rng.Read(p) // dirty: Schedule.Apply overwrites
	}
	sched.Apply(in, got)
	for i := range want {
		if !bytes.Equal(want[i], got[i]) {
			t.Fatalf("packet %d differs under CSE schedule", i)
		}
	}
}

// TestScheduleCSEEquivalenceExpanded: CSE schedules from real GF
// expansions (where shared pairs arise naturally from repeated
// coefficients down columns) stay equivalent to the flat apply and
// never cost more than plain Prim.
func TestScheduleCSEEquivalenceExpanded(t *testing.T) {
	rng := rand.New(rand.NewSource(195))
	f := gf.GF8
	for trial := 0; trial < 8; trial++ {
		rows, cols := 2+rng.Intn(2), 3+rng.Intn(4)
		m := matrix.New(f, rows, cols)
		// Repeat a small coefficient palette so bit-level pairs recur.
		palette := []uint32{3, 7, uint32(2 + rng.Intn(250))}
		for i := 0; i < rows; i++ {
			for j := 0; j < cols; j++ {
				m.Set(i, j, palette[rng.Intn(len(palette))])
			}
		}
		bm := Expand(f, m)
		sched := bm.Optimize()
		if plain := bm.prim(bm.schedule, nil); sched.XORs() > plain.XORs() {
			t.Fatalf("trial %d: Optimize %d XORs worse than plain MST %d", trial, sched.XORs(), plain.XORs())
		}

		in := AllocPackets(cols*8, 16)
		for _, p := range in {
			rng.Read(p)
		}
		want := AllocPackets(rows*8, 16)
		bm.Apply(in, want)
		got := AllocPackets(rows*8, 16)
		sched.Apply(in, got)
		for i := range want {
			if !bytes.Equal(want[i], got[i]) {
				t.Fatalf("trial %d: packet %d differs (temps=%d)", trial, i, sched.Temps())
			}
		}
	}
}

func BenchmarkScheduleVsFlat(b *testing.B) {
	rng := rand.New(rand.NewSource(193))
	f := gf.GF8
	m := randCoeffMatrix(rng, f, 3, 8)
	bm := Expand(f, m)
	sched := bm.Optimize()
	in := AllocPackets(8*8, 1024)
	for _, p := range in {
		rng.Read(p)
	}
	out := AllocPackets(3*8, 1024)
	b.Run("flat", func(b *testing.B) {
		b.SetBytes(int64(8 * 8 * 1024))
		for i := 0; i < b.N; i++ {
			Zero := out // accumulate semantics need clearing; reuse buffers
			for _, p := range Zero {
				for j := range p {
					p[j] = 0
				}
			}
			bm.Apply(in, out)
		}
	})
	b.Run("scheduled", func(b *testing.B) {
		b.SetBytes(int64(8 * 8 * 1024))
		for i := 0; i < b.N; i++ {
			sched.Apply(in, out)
		}
	})
}
