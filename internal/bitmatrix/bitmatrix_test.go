package bitmatrix

import (
	"fmt"
	"math/rand"
	"testing"

	"ppm/internal/gf"
	"ppm/internal/matrix"
)

func randCoeffMatrix(rng *rand.Rand, f gf.Field, rows, cols int) *matrix.Matrix {
	m := matrix.New(f, rows, cols)
	mask := uint32((f.Order() - 1) & 0xFFFFFFFF)
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			m.Set(i, j, rng.Uint32()&mask)
		}
	}
	return m
}

// TestPackUnpackRoundTrip: the layout bridge is a bijection.
func TestPackUnpackRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(161))
	for _, w := range []int{8, 16, 32} {
		symbols := make([]uint32, 64)
		mask := uint32(0xFFFFFFFF)
		if w < 32 {
			mask = (1 << uint(w)) - 1
		}
		for i := range symbols {
			symbols[i] = rng.Uint32() & mask
		}
		packets, err := PackSymbols(symbols, w)
		if err != nil {
			t.Fatal(err)
		}
		back := UnpackSymbols(packets, w)
		for i := range symbols {
			if back[i] != symbols[i] {
				t.Fatalf("w=%d symbol %d: %#x -> %#x", w, i, symbols[i], back[i])
			}
		}
	}
	if _, err := PackSymbols(make([]uint32, 7), 8); err == nil {
		t.Fatal("non-multiple-of-8 symbol count accepted")
	}
}

// TestExpandSingleCoefficient: multiplying packed symbols by the bit
// matrix of a single coefficient equals the field multiply, for every
// field — the algebraic heart of the CRS technique.
func TestExpandSingleCoefficient(t *testing.T) {
	rng := rand.New(rand.NewSource(162))
	for _, f := range []gf.Field{gf.GF8, gf.GF16, gf.GF32} {
		f := f
		t.Run(fmt.Sprintf("GF%d", f.W()), func(t *testing.T) {
			mask := uint32((f.Order() - 1) & 0xFFFFFFFF)
			for trial := 0; trial < 10; trial++ {
				a := rng.Uint32() & mask
				m := matrix.New(f, 1, 1)
				m.Set(0, 0, a)
				bm := Expand(f, m)

				symbols := make([]uint32, 32)
				for i := range symbols {
					symbols[i] = rng.Uint32() & mask
				}
				in, err := PackSymbols(symbols, f.W())
				if err != nil {
					t.Fatal(err)
				}
				out := AllocPackets(f.W(), len(in[0]))
				bm.Apply(in, out)
				got := UnpackSymbols(out, f.W())
				for i, sym := range symbols {
					if want := f.Mul(a, sym); got[i] != want {
						t.Fatalf("a=%#x symbol %d: got %#x want %#x", a, i, got[i], want)
					}
				}
			}
		})
	}
}

// TestExpandMatrixMatchesMulVec: a full matrix-times-vector product in
// the packet domain equals the field-level MulVec.
func TestExpandMatrixMatchesMulVec(t *testing.T) {
	rng := rand.New(rand.NewSource(163))
	f := gf.GF8
	m := randCoeffMatrix(rng, f, 3, 5)
	bm := Expand(f, m)
	if bm.Rows() != 3 || bm.Cols() != 5 || bm.W() != 8 {
		t.Fatal("dims wrong")
	}

	// 16 independent symbol vectors processed at once (symbols t of
	// each input live at bit position t of the packets).
	const batch = 16
	vectors := make([][]uint32, batch)
	for b := range vectors {
		vectors[b] = make([]uint32, 5)
		for j := range vectors[b] {
			vectors[b][j] = uint32(rng.Intn(256))
		}
	}
	// Pack: input column j becomes w packets over the batch dimension.
	in := make([][]byte, 0, 5*8)
	for j := 0; j < 5; j++ {
		col := make([]uint32, batch)
		for b := 0; b < batch; b++ {
			col[b] = vectors[b][j]
		}
		pk, err := PackSymbols(col, 8)
		if err != nil {
			t.Fatal(err)
		}
		in = append(in, pk...)
	}
	out := AllocPackets(3*8, batch/8)
	bm.Apply(in, out)

	for r := 0; r < 3; r++ {
		got := UnpackSymbols(out[r*8:(r+1)*8], 8)
		for b := 0; b < batch; b++ {
			want := m.MulVec(vectors[b])[r]
			if got[b] != want {
				t.Fatalf("row %d batch %d: got %#x want %#x", r, b, got[b], want)
			}
		}
	}
}

// TestOnesCost: zero matrix has no schedule; identity has exactly w
// ones per symbol row.
func TestOnesCost(t *testing.T) {
	f := gf.GF8
	if ones := Expand(f, matrix.New(f, 2, 3)).Ones(); ones != 0 {
		t.Fatalf("zero matrix ones = %d", ones)
	}
	id := matrix.Identity(f, 4)
	bm := Expand(f, id)
	if bm.Ones() != 4*8 {
		t.Fatalf("identity ones = %d, want 32", bm.Ones())
	}
}

func TestApplyShapePanics(t *testing.T) {
	bm := Expand(gf.GF8, matrix.Identity(gf.GF8, 2))
	defer func() {
		if recover() == nil {
			t.Fatal("shape mismatch did not panic")
		}
	}()
	bm.Apply(AllocPackets(3, 8), AllocPackets(16, 8))
}

// TestApplyAccumulates: applying twice cancels (GF(2)).
func TestApplyAccumulates(t *testing.T) {
	rng := rand.New(rand.NewSource(164))
	f := gf.GF8
	m := randCoeffMatrix(rng, f, 2, 2)
	bm := Expand(f, m)
	in := AllocPackets(16, 8)
	for _, p := range in {
		rng.Read(p)
	}
	out := AllocPackets(16, 8)
	bm.Apply(in, out)
	bm.Apply(in, out)
	for _, p := range out {
		for _, b := range p {
			if b != 0 {
				t.Fatal("double apply did not cancel")
			}
		}
	}
}

// BenchmarkBackends contrasts the XOR-schedule back end with the
// table-driven back end on the same coefficient matrix and the same
// bytes-per-symbol budget — the Jerasure-vs-GF-Complete trade-off.
func BenchmarkBackends(b *testing.B) {
	rng := rand.New(rand.NewSource(165))
	f := gf.GF8
	const (
		rows, cols = 2, 8
		regionSize = 8192 // bytes per symbol column
	)
	m := randCoeffMatrix(rng, f, rows, cols)

	b.Run("bitmatrix-xor-schedule", func(b *testing.B) {
		bm := Expand(f, m)
		in := AllocPackets(cols*8, regionSize/8)
		for _, p := range in {
			rng.Read(p)
		}
		out := AllocPackets(rows*8, regionSize/8)
		b.SetBytes(int64(cols * regionSize))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			bm.Apply(in, out)
		}
	})
	b.Run("table-driven", func(b *testing.B) {
		in := make([][]byte, cols)
		for j := range in {
			in[j] = make([]byte, regionSize)
			rng.Read(in[j])
		}
		out := make([][]byte, rows)
		for r := range out {
			out[r] = make([]byte, regionSize)
		}
		b.SetBytes(int64(cols * regionSize))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for r := 0; r < rows; r++ {
				for j := 0; j < cols; j++ {
					if a := m.At(r, j); a != 0 {
						f.MultXORs(out[r], in[j], a)
					}
				}
			}
		}
	})
}
