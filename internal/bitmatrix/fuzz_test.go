package bitmatrix

import (
	"bytes"
	"testing"

	"ppm/internal/gf"
	"ppm/internal/matrix"
)

// FuzzExpandApply drives arbitrary coefficient matrices through the
// bit-matrix pipeline and cross-checks both the raw schedule and the
// CSE-optimized schedule against scalar GF(2^8) matrix-vector
// multiplication. The fuzzer owns the whole back end: Expand, Apply,
// Optimize, PackSymbols and UnpackSymbols all sit on the checked path.
// (Runs its seed corpus under plain `go test`; explore with
// `go test -fuzz FuzzExpandApply`.)
func FuzzExpandApply(f *testing.F) {
	f.Add(uint8(1), uint8(1), []byte{1, 2, 3, 4, 5, 6, 7, 8})
	f.Add(uint8(2), uint8(3), []byte{0xAB, 0xCD, 1, 0, 0xFF, 3, 9, 27, 81, 0x1D})
	f.Add(uint8(4), uint8(4), bytes.Repeat([]byte{0x55, 0xAA}, 12))

	field := gf.GF8
	const w = 8
	f.Fuzz(func(t *testing.T, r, c uint8, raw []byte) {
		rows := int(r%4) + 1
		cols := int(c%4) + 1
		need := rows*cols + cols*8 // coefficients, then 8 symbols per column
		if len(raw) < need {
			return
		}
		m := matrix.New(field, rows, cols)
		for i := 0; i < rows; i++ {
			for j := 0; j < cols; j++ {
				m.Set(i, j, uint32(raw[i*cols+j]))
			}
		}
		symbols := make([]uint32, cols*8) // 8 symbols per input: PackSymbols needs a multiple of 8
		for i := range symbols {
			symbols[i] = uint32(raw[rows*cols+i])
		}

		// Scalar reference: out[i*8+t] = sum_j m[i][j] * in[j*8+t].
		want := make([]uint32, rows*8)
		for i := 0; i < rows; i++ {
			for j := 0; j < cols; j++ {
				a := m.At(i, j)
				for s := 0; s < 8; s++ {
					want[i*8+s] ^= field.Mul(a, symbols[j*8+s])
				}
			}
		}

		bm := Expand(field, m)
		in := make([][]byte, 0, cols*w)
		for j := 0; j < cols; j++ {
			packets, err := PackSymbols(symbols[j*8:(j+1)*8], w)
			if err != nil {
				t.Fatalf("PackSymbols: %v", err)
			}
			in = append(in, packets...)
		}
		unpack := func(out [][]byte) []uint32 {
			got := make([]uint32, 0, rows*8)
			for i := 0; i < rows; i++ {
				got = append(got, UnpackSymbols(out[i*w:(i+1)*w], w)...)
			}
			return got
		}

		out := AllocPackets(rows*w, 1)
		bm.Apply(in, out)
		if got := unpack(out); !equalU32(got, want) {
			t.Fatalf("Apply: got %v want %v (matrix %dx%d)", got, want, rows, cols)
		}

		sched := bm.Optimize()
		out2 := AllocPackets(rows*w, 1)
		sched.Apply(in, out2)
		if got := unpack(out2); !equalU32(got, want) {
			t.Fatalf("Optimize().Apply: got %v want %v (matrix %dx%d)", got, want, rows, cols)
		}
		if sched.XORs() > bm.Ones() {
			t.Fatalf("optimized schedule uses %d XORs, raw uses %d", sched.XORs(), bm.Ones())
		}
	})
}

func equalU32(a, b []uint32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
