package bitmatrix

import (
	"strings"
	"testing"

	"ppm/internal/gf"
	"ppm/internal/matrix"
)

// TestValidateCatchesForwardTempReference is the regression test for
// the unchecked-temp-id executor bug: a schedule whose CSE round emits
// a temp referencing a *later* temp used to index the temp arena before
// that packet was written (reading zeroes here, stale memory with a
// pooled arena). Validate must reject it and Apply must refuse to run.
func TestValidateCatchesForwardTempReference(t *testing.T) {
	// 1 output row = temp1 over 4 inputs, where temp0 references temp1.
	prog := &SetSchedule{
		Rows:    1,
		InCount: 4,
		Temps: [][2]int{
			{5, 0}, // temp0 := temp1 ^ in0 — temp1 (id 5) is defined later
			{1, 2}, // temp1 := in1 ^ in2
		},
		Ops:      []SetOp{{Dst: 0, From: -1, Srcs: []int{4}}},
		XORCount: 5,
	}
	err := prog.Validate()
	if err == nil {
		t.Fatal("Validate accepted a temp referencing a later temp")
	}
	if !strings.Contains(err.Error(), "temp 0") {
		t.Fatalf("error does not name the offending temp: %v", err)
	}

	sched := &Schedule{rows: 1, cols: 4, w: 1, prog: prog}
	defer func() {
		if recover() == nil {
			t.Fatal("Apply ran a schedule with a forward temp reference")
		}
	}()
	sched.Apply(AllocPackets(4, 8), AllocPackets(1, 8))
}

// TestValidateRejectsMalformedPrograms sweeps the remaining corruption
// classes one by one; each must be caught before any packet is touched.
func TestValidateRejectsMalformedPrograms(t *testing.T) {
	base := func() *SetSchedule {
		return &SetSchedule{
			Rows:    2,
			InCount: 3,
			Temps:   [][2]int{{0, 1}},
			Ops: []SetOp{
				{Dst: 0, From: -1, Srcs: []int{3, 2}},
				{Dst: 1, From: 0, Srcs: []int{2}},
			},
		}
	}
	if err := base().Validate(); err != nil {
		t.Fatalf("baseline program invalid: %v", err)
	}
	cases := []struct {
		name   string
		mutate func(*SetSchedule)
	}{
		{"temp id out of range", func(p *SetSchedule) { p.Temps[0][1] = 99 }},
		{"negative temp source", func(p *SetSchedule) { p.Temps[0][0] = -1 }},
		{"op source beyond temp arena", func(p *SetSchedule) { p.Ops[0].Srcs[0] = 4 }},
		{"negative op source", func(p *SetSchedule) { p.Ops[1].Srcs[0] = -2 }},
		{"dst out of range", func(p *SetSchedule) { p.Ops[1].Dst = 2 }},
		{"row written twice", func(p *SetSchedule) { p.Ops[1].Dst = 0 }},
		{"derive from unwritten row", func(p *SetSchedule) { p.Ops[0].From = 1 }},
		{"derive from out-of-range row", func(p *SetSchedule) { p.Ops[1].From = 7 }},
	}
	for _, tc := range cases {
		p := base()
		tc.mutate(p)
		if err := p.Validate(); err == nil {
			t.Errorf("%s: Validate accepted the corrupt program", tc.name)
		}
	}
}

// TestOptimizedSchedulesValidate pins that every schedule the real
// construction emits passes its own validation — the check in Apply
// must never fire on legitimate programs.
func TestOptimizedSchedulesValidate(t *testing.T) {
	for _, f := range []gf.Field{gf.GF8, gf.GF16} {
		m := matrix.New(f, 3, 5)
		for i := 0; i < 3; i++ {
			for j := 0; j < 5; j++ {
				m.Set(i, j, uint32(1+(i+j)%6))
			}
		}
		sched := Expand(f, m).Optimize()
		if err := sched.Program().Validate(); err != nil {
			t.Errorf("gf%d: optimized schedule fails validation: %v", f.W(), err)
		}
	}
}
