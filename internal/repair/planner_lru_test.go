package repair

import (
	"sync"
	"testing"

	"ppm/internal/codes"
)

// lruScenario builds a decodable scenario or fails the test.
func lruScenario(t *testing.T, c codes.Code, faulty []int) codes.Scenario {
	t.Helper()
	sc, err := codes.NewScenario(c, faulty)
	if err != nil {
		t.Fatalf("faulty=%v: %v", faulty, err)
	}
	if !codes.Decodable(c, sc) {
		t.Fatalf("faulty=%v: not decodable", faulty)
	}
	return sc
}

// TestPlannerCacheEviction pins the LRU discipline of a capacity-2
// planner cache: the least recently used plan is evicted, a recently
// touched one survives, and every Plan call is accounted as exactly one
// hit or one miss.
func TestPlannerCacheEviction(t *testing.T) {
	c, err := codes.NewPublishedSD(1)
	if err != nil {
		t.Fatal(err)
	}
	pl := NewPlanner(c, WithCacheSize(2))
	sc1 := lruScenario(t, c, []int{1})
	sc2 := lruScenario(t, c, []int{7})
	sc3 := lruScenario(t, c, []int{13})

	p1, err := pl.Plan(sc1, nil) // miss
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pl.Plan(sc2, nil); err != nil { // miss
		t.Fatal(err)
	}
	// Touch sc1 so sc2 is the eviction victim.
	if p, err := pl.Plan(sc1, nil); err != nil || p != p1 { // hit
		t.Fatalf("resident plan was rebuilt (err=%v)", err)
	}
	if _, err := pl.Plan(sc3, nil); err != nil { // miss, evicts sc2
		t.Fatal(err)
	}
	if p, err := pl.Plan(sc1, nil); err != nil || p != p1 { // hit
		t.Fatalf("sc1 evicted out of LRU order (err=%v)", err)
	}
	if _, err := pl.Plan(sc2, nil); err != nil { // miss: was evicted
		t.Fatal(err)
	}
	hits, misses := pl.CacheStats()
	if hits != 2 || misses != 4 {
		t.Fatalf("hits=%d misses=%d, want 2/4", hits, misses)
	}
}

// TestPlannerCacheWantedKeying pins that the wanted set is part of the
// cache key: a partial-recovery plan and the full plan for the same
// failure pattern are distinct entries, and replanning the original
// request after the widened one still hits the cached plan.
func TestPlannerCacheWantedKeying(t *testing.T) {
	c, err := codes.NewPublishedSD(1)
	if err != nil {
		t.Fatal(err)
	}
	pl := NewPlanner(c)
	sc := lruScenario(t, c, []int{2, 8})

	partial, err := pl.Plan(sc, []int{2}) // miss
	if err != nil {
		t.Fatal(err)
	}
	full, err := pl.Plan(sc, nil) // miss: different wanted key
	if err != nil {
		t.Fatal(err)
	}
	if partial == full {
		t.Fatal("partial and full recovery requests shared one cache entry")
	}
	if p, err := pl.Plan(sc, []int{2}); err != nil || p != partial { // hit
		t.Fatalf("partial plan was rebuilt after the full plan (err=%v)", err)
	}
	if p, err := pl.Plan(sc, nil); err != nil || p != full { // hit
		t.Fatalf("full plan was rebuilt after the partial plan (err=%v)", err)
	}
	if hits, misses := pl.CacheStats(); hits != 2 || misses != 2 {
		t.Fatalf("hits=%d misses=%d, want 2/2", hits, misses)
	}
}

// TestPlannerCacheConcurrent hammers one planner from many goroutines
// (run with -race): no call errors, every call is accounted exactly
// once, and each key was built at least once.
func TestPlannerCacheConcurrent(t *testing.T) {
	c, err := codes.NewPublishedSD(1)
	if err != nil {
		t.Fatal(err)
	}
	pl := NewPlanner(c)
	scs := []codes.Scenario{
		lruScenario(t, c, []int{0}),
		lruScenario(t, c, []int{5}),
		lruScenario(t, c, []int{11}),
		lruScenario(t, c, []int{3, 9}),
	}

	const workers = 8
	const rounds = 6
	var wg sync.WaitGroup
	errs := make(chan error, workers*rounds*len(scs))
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				for i := range scs {
					sc := scs[(i+g)%len(scs)]
					if _, err := pl.Plan(sc, nil); err != nil {
						errs <- err
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	hits, misses := pl.CacheStats()
	const calls = workers * rounds * 4
	if hits+misses != calls {
		t.Fatalf("hits(%d)+misses(%d) = %d, want %d calls", hits, misses, hits+misses, calls)
	}
	// Concurrent cold misses on one key may each count, but every key
	// missed at least once and the cache absorbed the rest.
	if misses < int64(len(scs)) {
		t.Fatalf("misses=%d below the %d distinct keys", misses, len(scs))
	}
	if hits == 0 {
		t.Fatal("no hits across repeated rounds: the cache is not retaining plans")
	}
}

// TestPlannerCacheDisabled pins WithCacheSize(0): plans always rebuild
// and the counters stay zero.
func TestPlannerCacheDisabled(t *testing.T) {
	c, err := codes.NewPublishedSD(0)
	if err != nil {
		t.Fatal(err)
	}
	pl := NewPlanner(c, WithCacheSize(0))
	sc := lruScenario(t, c, []int{4})
	a, err := pl.Plan(sc, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := pl.Plan(sc, nil)
	if err != nil {
		t.Fatal(err)
	}
	if a == b {
		t.Fatal("cache-disabled planner returned a cached plan")
	}
	if hits, misses := pl.CacheStats(); hits != 0 || misses != 0 {
		t.Fatalf("disabled cache counted hits=%d misses=%d", hits, misses)
	}
}
