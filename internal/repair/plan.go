// Package repair plans minimal-read recovery: given a code's
// parity-check structure and a failure set, it picks the smallest
// survivor set that recovers each wanted sector (an LRC local group
// before the global parities, a single SD stripe row before the full
// closure), compiles the recovery equations into kernel products, and
// scores candidates by bytes-read first, mult_XORs second
// (cost.RepairCost). The paper's u(M)-minimising partition choice
// optimises operations; this layer extends the same idea to the
// dominant real cost of a repair — bytes read off surviving disks
// (the repair-bandwidth lens of arXiv:1412.3022).
package repair

import (
	"fmt"
	"sort"

	"ppm/internal/codes"
	"ppm/internal/core"
	"ppm/internal/cost"
	"ppm/internal/gf"
	"ppm/internal/kernel"
	"ppm/internal/matrix"
)

// Step is one compiled recovery product: Out = M · In, where In are
// survivor sectors (or outputs of earlier steps) and M is either the
// MatrixFirst product G or the Normal-sequence pair F⁻¹, S.
type Step struct {
	// Out lists the faulty sectors this step recovers (global indices).
	Out []int
	// In lists the sectors the product consumes, in column order.
	// Entries recovered by an earlier step are read from the stripe,
	// not the array.
	In []int
	// Seq selects the kernel sequence; G backs MatrixFirst, Finv and S
	// back Normal.
	Seq  kernel.Sequence
	G    *kernel.CompiledMatrix
	Finv *kernel.CompiledMatrix
	S    *kernel.CompiledMatrix
	// Ops is the step's predicted mult_XORs (matrix nonzero count).
	Ops int64
	// MinimizedRow is the parity-check row index when the step is a
	// single-row repair equation that beat the partition group's
	// survivor set; -1 when the step uses the group/rest sub-decode.
	MinimizedRow int
}

// Plan is a compiled minimal-read repair: the ordered steps that
// materialise the wanted faulty sectors, the survivor sectors they
// read, and the bytes-read × mult_XORs cost. Plans are immutable after
// construction and safe for concurrent execution on distinct stripes.
type Plan struct {
	// Scenario is the failure pattern the plan repairs.
	Scenario codes.Scenario
	// Wanted lists the faulty sectors the plan recovers, sorted. Every
	// other faulty sector may or may not be recovered (those sharing a
	// selected sub-decode are).
	Wanted []int
	// Steps run in order; later steps may consume earlier outputs.
	Steps []Step
	// ReadCols lists the survivor sectors the plan reads from the
	// array, sorted — the minimal read set. Outputs of earlier steps
	// are excluded: they are recovered in memory, not read.
	ReadCols []int
	// Cost scores the plan (bytes read first, mult_XORs tiebreak).
	Cost cost.RepairCost

	code   codes.Code
	nViews int
}

// InputColumns returns the survivor sectors a caller must materialise
// in the stripe before Execute — ReadCols, aliased.
func (p *Plan) InputColumns() []int { return p.ReadCols }

// ReadDisks returns the distinct strips (disk indices) holding
// ReadCols, sorted — the strips a store-level repair must fetch.
func (p *Plan) ReadDisks() []int {
	n := p.code.NumStrips()
	seen := make(map[int]bool, n)
	var disks []int
	for _, c := range p.ReadCols {
		if d := c % n; !seen[d] {
			seen[d] = true
			disks = append(disks, d)
		}
	}
	sort.Ints(disks)
	return disks
}

// canonicalWanted intersects wanted with the scenario's faulty set and
// sorts; a nil wanted selects every faulty sector (full repair).
func canonicalWanted(sc codes.Scenario, wanted []int) []int {
	if wanted == nil {
		out := make([]int, len(sc.Faulty))
		copy(out, sc.Faulty)
		return out
	}
	faulty := sc.FaultySet()
	seen := make(map[int]bool, len(wanted))
	var out []int
	for _, w := range wanted {
		if faulty[w] && !seen[w] {
			seen[w] = true
			out = append(out, w)
		}
	}
	sort.Ints(out)
	return out
}

// buildPlan constructs the minimal-read plan: the core partition's
// partial-decode closure for the wanted sectors, with every
// single-failure group re-minimised against the raw parity-check rows
// (the group merges all rows touching the failure; one row usually
// reads fewer survivors).
func buildPlan(c codes.Code, sc codes.Scenario, wanted []int) (*Plan, error) {
	p := &Plan{
		Scenario: sc,
		Wanted:   canonicalWanted(sc, wanted),
		code:     c,
	}
	p.Cost.FullReadSectors = codes.TotalSectors(c) - len(sc.Faulty)
	if len(p.Wanted) == 0 {
		return p, nil
	}

	cp, err := core.BuildPlan(c, sc, core.StrategyPPM)
	if err != nil {
		return nil, err
	}
	sel, err := cp.SelectPartial(p.Wanted)
	if err != nil {
		return nil, err
	}

	field := c.Field()
	h := c.ParityCheck()
	faulty := sc.FaultySet()
	for _, gi := range sel.GroupIdx {
		p.Steps = append(p.Steps, stepForGroup(field, h, &cp.Groups[gi], faulty))
	}
	if sel.NeedRest {
		r := cp.Rest
		p.Steps = append(p.Steps, Step{
			Out:          r.FaultyCols,
			In:           r.SurvivorCols,
			Seq:          kernel.Normal,
			Finv:         kernel.Compile(field, r.Finv),
			S:            kernel.Compile(field, r.S),
			Ops:          int64(r.Finv.NNZ() + r.S.NNZ()),
			MinimizedRow: -1,
		})
	}

	produced := make(map[int]bool)
	readSet := make(map[int]bool)
	for i := range p.Steps {
		for _, col := range p.Steps[i].In {
			if !produced[col] {
				readSet[col] = true
			}
		}
		for _, col := range p.Steps[i].Out {
			produced[col] = true
		}
		p.Cost.MultXORs += p.Steps[i].Ops
		p.nViews += len(p.Steps[i].In) + len(p.Steps[i].Out)
	}
	p.ReadCols = make([]int, 0, len(readSet))
	for col := range readSet {
		p.ReadCols = append(p.ReadCols, col)
	}
	sort.Ints(p.ReadCols)
	p.Cost.ReadSectors = len(p.ReadCols)
	return p, nil
}

// stepForGroup compiles one partition group. A group holding a single
// faulty sector merges every parity-check row that touches it, so its
// survivor set is the union of those rows' supports; any single row
// whose other unknowns are all survivors recovers the sector alone as
//
//	b_f = h[i][f]⁻¹ · Σ_{j≠f} h[i][j] · b_j
//
// The row with the fewest survivors wins when it beats the group
// (cost.RepairCost ordering: bytes read first, ops tiebreak). For an
// LRC data block this picks the local-group row over any global
// parity row; for a one-failure RS stripe it picks one generator row
// (k survivors) over the merged n−1.
func stepForGroup(field gf.Field, h *matrix.Matrix, g *core.SubDecode, faulty map[int]bool) Step {
	if len(g.FaultyCols) == 1 {
		f := g.FaultyCols[0]
		bestRow := -1
		var bestIn []int
	rows:
		for i := 0; i < h.Rows(); i++ {
			a := h.At(i, f)
			if a == 0 {
				continue
			}
			var in []int
			for j := 0; j < h.Cols(); j++ {
				if j == f || h.At(i, j) == 0 {
					continue
				}
				if faulty[j] {
					continue rows // equation has another unknown
				}
				in = append(in, j)
			}
			if bestRow < 0 || len(in) < len(bestIn) {
				bestRow, bestIn = i, in
			}
		}
		if bestRow >= 0 && len(bestIn) < len(g.SurvivorCols) {
			a := h.At(bestRow, f)
			m := matrix.New(field, 1, len(bestIn))
			for k, j := range bestIn {
				m.Set(0, k, field.Div(h.At(bestRow, j), a))
			}
			return Step{
				Out:          []int{f},
				In:           bestIn,
				Seq:          kernel.MatrixFirst,
				G:            kernel.Compile(field, m),
				Ops:          int64(m.NNZ()),
				MinimizedRow: bestRow,
			}
		}
	}
	return Step{
		Out:          g.FaultyCols,
		In:           g.SurvivorCols,
		Seq:          kernel.MatrixFirst,
		G:            kernel.Compile(field, g.G),
		Ops:          int64(g.G.NNZ()),
		MinimizedRow: -1,
	}
}

// validate checks a stripe and byte range against the plan's geometry.
func (p *Plan) validate(n, r, sectorSize, lo, hi int) error {
	if n != p.code.NumStrips() || r != p.code.NumRows() {
		return fmt.Errorf("repair: stripe %dx%d does not match code %s (%dx%d)",
			n, r, p.code.Name(), p.code.NumStrips(), p.code.NumRows())
	}
	wb := p.code.Field().WordBytes()
	if lo < 0 || hi > sectorSize || lo >= hi {
		return fmt.Errorf("repair: byte range [%d,%d) outside sector size %d", lo, hi, sectorSize)
	}
	if lo%wb != 0 || hi%wb != 0 {
		return fmt.Errorf("repair: byte range [%d,%d) not aligned to the %d-byte GF word", lo, hi, wb)
	}
	return nil
}
