package repair

import (
	"bytes"
	"math/rand"
	"testing"

	"ppm/internal/codes"
	"ppm/internal/core"
	"ppm/internal/kernel"
	"ppm/internal/stripe"
)

// encoded returns a random encoded stripe for the code.
func encoded(t *testing.T, c codes.Code, sector int, seed int64) *stripe.Stripe {
	t.Helper()
	st, err := stripe.New(c.NumStrips(), c.NumRows(), sector)
	if err != nil {
		t.Fatal(err)
	}
	st.FillDataRandom(seed, codes.DataPositions(c))
	if err := core.NewDecoder(c).Encode(st); err != nil {
		t.Fatal(err)
	}
	return st
}

func scenario(t *testing.T, c codes.Code, faulty []int) codes.Scenario {
	t.Helper()
	sc, err := codes.NewScenario(c, faulty)
	if err != nil {
		t.Fatal(err)
	}
	return sc
}

// TestLRCSingleFailureReadsLocalGroup: the heart of the minimal-read
// planner — repairing one LRC data block reads its local group (k/l
// survivors), not the stripe, and stays under the 60% bytes-read gate.
func TestLRCSingleFailureReadsLocalGroup(t *testing.T) {
	lrc, err := codes.NewLRC(12, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	pl := NewPlanner(lrc)
	sc := scenario(t, lrc, []int{3})
	plan, err := pl.Plan(sc, nil)
	if err != nil {
		t.Fatal(err)
	}
	// LRC(12,2,2): local groups of 12/2 = 6 data blocks + 1 local
	// parity; repairing block 3 must read exactly the 6 other members
	// of its local group.
	if got := len(plan.ReadCols); got != 6 {
		t.Fatalf("single-failure LRC repair reads %d sectors (%v), want 6", got, plan.ReadCols)
	}
	if frac := plan.Cost.ReadFraction(); frac > 0.60 {
		t.Fatalf("read fraction %.2f exceeds the 0.60 gate", frac)
	}
	// The local-group partition is already row-minimal here, so the
	// plan is a single 1-output step over the 6 group survivors.
	if len(plan.Steps) != 1 || len(plan.Steps[0].Out) != 1 || len(plan.Steps[0].In) != 6 {
		t.Fatalf("expected one 1x6 step, got %+v", plan.Steps)
	}

	st := encoded(t, lrc, 64, 1)
	want := st.Clone()
	st.Scribble(2, sc.Faulty)
	var stats kernel.Stats
	if err := plan.Execute(st, &stats); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(st.Sector(3), want.Sector(3)) {
		t.Fatal("repaired sector differs from original")
	}
	if stats.MultXORs() != plan.Cost.MultXORs {
		t.Fatalf("measured %d ops, plan predicted %d", stats.MultXORs(), plan.Cost.MultXORs)
	}
}

// TestRSSingleFailureMinimizedRow: a one-failure RS repair uses a
// single generator row (k survivors), not the merged group closure.
func TestRSSingleFailureMinimizedRow(t *testing.T) {
	rs, err := codes.NewRS(12, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	pl := NewPlanner(rs)
	sc := scenario(t, rs, []int{5})
	plan, err := pl.Plan(sc, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := len(plan.ReadCols), 8; got != want {
		t.Fatalf("RS(12,·,4) single repair reads %d sectors, want k=%d", got, want)
	}
	st := encoded(t, rs, 64, 2)
	wantSt := st.Clone()
	st.Scribble(3, sc.Faulty)
	if err := plan.Execute(st, nil); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(st.Sector(5), wantSt.Sector(5)) {
		t.Fatal("repaired sector differs from original")
	}
}

// TestDifferentialAgainstFullDecode: across SD/LRC/RS and random
// decodable failure sets, repair-plan outputs are byte-identical to a
// full-stripe decode on every wanted sector.
func TestDifferentialAgainstFullDecode(t *testing.T) {
	mk := func(name string, c codes.Code, err error) codes.Code {
		t.Helper()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		return c
	}
	sd, err1 := codes.NewSD(8, 4, 2, 2)
	lrc, err2 := codes.NewLRC(12, 2, 2)
	rs, err3 := codes.NewRS(10, 1, 3)
	cases := []codes.Code{mk("sd", sd, err1), mk("lrc", lrc, err2), mk("rs", rs, err3)}

	rng := rand.New(rand.NewSource(99))
	for _, c := range cases {
		t.Run(c.Name(), func(t *testing.T) {
			pl := NewPlanner(c)
			total := codes.TotalSectors(c)
			for trial := 0; trial < 40; trial++ {
				nf := 1 + rng.Intn(3)
				perm := rng.Perm(total)
				sc, err := codes.NewScenario(c, perm[:nf])
				if err != nil {
					t.Fatal(err)
				}
				if !codes.Decodable(c, sc) {
					continue
				}
				wanted := []int{sc.Faulty[rng.Intn(len(sc.Faulty))]}
				plan, err := pl.Plan(sc, wanted)
				if err != nil {
					t.Fatal(err)
				}
				st := encoded(t, c, 64, int64(trial))
				want := st.Clone()
				st.Scribble(int64(trial)+7, sc.Faulty)

				// The plan must only consume survivors it declared:
				// scribble every survivor outside ReadCols too, so an
				// undeclared read corrupts the output.
				read := make(map[int]bool, len(plan.ReadCols))
				for _, col := range plan.ReadCols {
					read[col] = true
				}
				faulty := sc.FaultySet()
				var undeclared []int
				for col := 0; col < total; col++ {
					if !faulty[col] && !read[col] {
						undeclared = append(undeclared, col)
					}
				}
				st.Scribble(int64(trial)+13, undeclared)

				if err := plan.Execute(st, nil); err != nil {
					t.Fatalf("trial %d faulty %v: %v", trial, sc.Faulty, err)
				}
				for _, w := range wanted {
					if !bytes.Equal(st.Sector(w), want.Sector(w)) {
						t.Fatalf("trial %d faulty %v wanted %d: repair differs from original",
							trial, sc.Faulty, w)
					}
				}
				if len(plan.ReadCols) > plan.Cost.FullReadSectors {
					t.Fatalf("plan reads %d > full-stripe %d", len(plan.ReadCols), plan.Cost.FullReadSectors)
				}
			}
		})
	}
}

// TestExecuteRangeMatchesFull: range execution over word-aligned
// chunks reassembles to exactly the full-sector repair.
func TestExecuteRangeMatchesFull(t *testing.T) {
	sd, err := codes.NewSD(6, 4, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	pl := NewPlanner(sd)
	sc := scenario(t, sd, []int{2, 9, 14})
	plan, err := pl.Plan(sc, nil)
	if err != nil {
		t.Fatal(err)
	}
	full := encoded(t, sd, 256, 5)
	want := full.Clone()
	full.Scribble(11, sc.Faulty)
	chunked := full.Clone()

	if err := plan.Execute(full, nil); err != nil {
		t.Fatal(err)
	}
	wb := sd.Field().WordBytes()
	for lo := 0; lo < 256; {
		hi := lo + 32*wb
		if hi > 256 {
			hi = 256
		}
		if err := plan.ExecuteRange(chunked, lo, hi, nil); err != nil {
			t.Fatal(err)
		}
		lo = hi
	}
	for _, f := range sc.Faulty {
		if !bytes.Equal(full.Sector(f), want.Sector(f)) {
			t.Fatalf("full repair of sector %d wrong", f)
		}
		if !bytes.Equal(chunked.Sector(f), full.Sector(f)) {
			t.Fatalf("chunked repair of sector %d differs from full", f)
		}
	}
}

// TestPlannerCache: repeated plans for the same signature hit the LRU.
func TestPlannerCache(t *testing.T) {
	lrc, err := codes.NewLRC(8, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	pl := NewPlanner(lrc)
	sc := scenario(t, lrc, []int{1})
	p1, err := pl.Plan(sc, nil)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := pl.Plan(sc, nil)
	if err != nil {
		t.Fatal(err)
	}
	if p1 != p2 {
		t.Fatal("second Plan call did not return the cached plan")
	}
	if hits, misses := pl.CacheStats(); hits != 1 || misses != 1 {
		t.Fatalf("cache stats = %d hits / %d misses, want 1/1", hits, misses)
	}
}

// TestExecuteAllocFree: the steady-state repair path allocates nothing.
func TestExecuteAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("race-mode sync.Pool deliberately drops items; alloc counts are meaningless")
	}
	lrc, err := codes.NewLRC(12, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	pl := NewPlanner(lrc)
	sc := scenario(t, lrc, []int{3})
	plan, err := pl.Plan(sc, nil)
	if err != nil {
		t.Fatal(err)
	}
	st := encoded(t, lrc, 4096, 17)
	var stats kernel.Stats
	if err := plan.Execute(st, &stats); err != nil { // warm the pool
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(50, func() {
		if err := plan.Execute(st, &stats); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("repair Execute allocates %.1f per run, want 0", allocs)
	}
}

// TestUpdaterAllocFree: the pooled delta-update path allocates nothing
// at steady state.
func TestUpdaterAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("race-mode sync.Pool deliberately drops items; alloc counts are meaningless")
	}
	lrc, err := codes.NewLRC(12, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	pl := NewPlanner(lrc)
	u, err := pl.Updater()
	if err != nil {
		t.Fatal(err)
	}
	st := encoded(t, lrc, 4096, 23)
	content := make([]byte, 4096)
	for i := range content {
		content[i] = byte(i * 31)
	}
	if err := u.Update(st, 2, content, nil); err != nil { // warm the pool
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(50, func() {
		if err := u.Update(st, 2, content, nil); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("delta update allocates %.1f per run, want 0", allocs)
	}
}

// TestDeltaUpdateKeepsCodeword: after UpdateRange patches a sub-range,
// a fresh decode of any single erasure still reproduces the stripe —
// the delta left a valid codeword without a re-encode.
func TestDeltaUpdateKeepsCodeword(t *testing.T) {
	sd, err := codes.NewSD(6, 4, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	pl := NewPlanner(sd)
	u, err := pl.Updater()
	if err != nil {
		t.Fatal(err)
	}
	st := encoded(t, sd, 256, 31)
	wb := sd.Field().WordBytes()
	lo, hi := 16*wb, 48*wb
	patch := make([]byte, hi-lo)
	for i := range patch {
		patch[i] = byte(200 - i)
	}
	dataIdx := codes.DataPositions(sd)[1]
	if err := u.UpdateRange(st, dataIdx, patch, lo, hi, nil); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(st.Sector(dataIdx)[lo:hi], patch) {
		t.Fatal("data sector range not overwritten")
	}
	// Erase the patched sector and recover it purely from parity.
	want := st.Clone()
	sc := scenario(t, sd, []int{dataIdx})
	st.Scribble(41, sc.Faulty)
	if err := core.NewDecoder(sd).Decode(st, sc); err != nil {
		t.Fatal(err)
	}
	if !st.Equal(want) {
		t.Fatal("stripe is not a valid codeword after delta update")
	}

	dc, rc, err := pl.DeltaCost(dataIdx)
	if err != nil {
		t.Fatal(err)
	}
	if dc >= rc {
		t.Fatalf("delta cost %d sectors not below re-encode %d", dc, rc)
	}
}

// TestWantedSubset: a plan for one wanted sector of a multi-failure
// scenario skips unrelated sub-decodes.
func TestWantedSubset(t *testing.T) {
	lrc, err := codes.NewLRC(12, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	pl := NewPlanner(lrc)
	// Two failures in different local groups.
	sc := scenario(t, lrc, []int{1, 7})
	plan, err := pl.Plan(sc, []int{1})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := len(plan.Wanted), 1; got != want {
		t.Fatalf("wanted = %v", plan.Wanted)
	}
	full, err := pl.Plan(sc, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.ReadCols) >= len(full.ReadCols) {
		t.Fatalf("subset plan reads %d sectors, full repair %d — no reduction",
			len(plan.ReadCols), len(full.ReadCols))
	}
	st := encoded(t, lrc, 64, 3)
	want := st.Clone()
	st.Scribble(19, sc.Faulty)
	if err := plan.Execute(st, nil); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(st.Sector(1), want.Sector(1)) {
		t.Fatal("wanted sector not recovered")
	}
	if bytes.Equal(st.Sector(7), want.Sector(7)) {
		t.Fatal("unrelated faulty sector was decoded although not wanted")
	}
}

// TestUnrecoverableScenario surfaces ErrUnrecoverable-class failures
// as planning errors, not bad data.
func TestUnrecoverableScenario(t *testing.T) {
	rs, err := codes.NewRS(8, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	pl := NewPlanner(rs)
	sc := scenario(t, rs, []int{0, 1, 2})
	if _, err := pl.Plan(sc, nil); err == nil {
		t.Fatal("planning 3 erasures on a 2-parity RS code succeeded")
	}
}
