package repair

import (
	"container/list"
	"fmt"
	"os"
	"strconv"
	"sync"
	"sync/atomic"

	"ppm/internal/codes"
	"ppm/internal/core"
)

// ErrVerify wraps a plan-verification rejection: a freshly built repair
// plan failed the registered symbolic verifier and was not admitted to
// the planner cache.
var ErrVerify = fmt.Errorf("repair: compiled plan failed plan verification")

// verifier holds the registered plan verifier (func(codes.Code, *Plan)
// error), installed by internal/planverify's init. The registration
// indirection keeps the dependency one-way: planverify imports repair
// to walk plans, never the reverse.
var verifier atomic.Value

type verifierFn func(codes.Code, *Plan) error

// RegisterVerifier installs the symbolic repair-plan verifier consulted
// when plan verification is enabled. fn must be safe for concurrent use.
func RegisterVerifier(fn func(codes.Code, *Plan) error) {
	verifier.Store(verifierFn(fn))
}

// verifyPlans mirrors the xorplan gate: compile-time verification is
// off by default and enabled by PPM_VERIFY_PLANS=1 or SetVerifyPlans.
// Cache hits never re-verify; only freshly built plans pay the walk.
var verifyPlans atomic.Bool

func init() {
	if os.Getenv("PPM_VERIFY_PLANS") == "1" {
		verifyPlans.Store(true)
	}
}

// SetVerifyPlans enables or disables build-time plan verification and
// returns the previous setting (restore idiom for tests).
func SetVerifyPlans(on bool) (prev bool) { return verifyPlans.Swap(on) }

// buildVerified builds a plan and, when the gate is on, refuses to
// return one the registered verifier rejects.
func buildVerified(c codes.Code, sc codes.Scenario, wanted []int) (*Plan, error) {
	plan, err := buildPlan(c, sc, wanted)
	if err != nil {
		return nil, err
	}
	if verifyPlans.Load() {
		if fn, _ := verifier.Load().(verifierFn); fn != nil {
			if err := fn(c, plan); err != nil {
				return nil, fmt.Errorf("%w: %v", ErrVerify, err)
			}
		}
	}
	return plan, nil
}

// DefaultCacheSize bounds a Planner's plan cache. A rebuild or
// degraded-read workload sees a handful of distinct (failure pattern,
// wanted set) signatures, so a small LRU holds the working set.
const DefaultCacheSize = 64

// Planner builds and caches minimal-read repair plans for one code.
// Safe for concurrent use: the cache is mutex-guarded and cached plans
// are immutable.
type Planner struct {
	code codes.Code

	mu       sync.Mutex
	capacity int
	entries  map[string]*list.Element
	lru      list.List // Front is most recently used; values are *cacheEntry
	hits     int64
	misses   int64

	updater    *core.Updater
	updaterErr error
	updaterSet bool
}

type cacheEntry struct {
	key  string
	plan *Plan
}

// PlannerOption configures a Planner.
type PlannerOption func(*Planner)

// WithCacheSize bounds the plan cache; capacity <= 0 disables caching.
func WithCacheSize(capacity int) PlannerOption {
	return func(p *Planner) { p.capacity = capacity }
}

// NewPlanner builds a repair planner for the code.
func NewPlanner(c codes.Code, opts ...PlannerOption) *Planner {
	p := &Planner{code: c, capacity: DefaultCacheSize}
	for _, o := range opts {
		o(p)
	}
	if p.capacity > 0 {
		p.entries = make(map[string]*list.Element, p.capacity)
	}
	return p
}

// Code returns the bound code instance.
func (p *Planner) Code() codes.Code { return p.code }

// planKey canonicalises (failure pattern, wanted set) into a byte key.
// Scenario.Faulty is sorted; wanted is canonicalised by the builder,
// so the caller's order is normalised here too.
func planKey(buf []byte, sc codes.Scenario, wanted []int) []byte {
	for _, f := range sc.Faulty {
		buf = strconv.AppendInt(buf, int64(f), 10)
		buf = append(buf, ',')
	}
	buf = append(buf, '|')
	if wanted == nil {
		buf = append(buf, '*')
		return buf
	}
	for _, w := range wanted {
		buf = strconv.AppendInt(buf, int64(w), 10)
		buf = append(buf, ',')
	}
	return buf
}

// Plan returns the minimal-read repair plan recovering the wanted
// faulty sectors of the scenario (nil wanted = every faulty sector),
// consulting the LRU cache first. Wanted sectors that are not faulty
// are ignored — they are readable as-is.
func (p *Planner) Plan(sc codes.Scenario, wanted []int) (*Plan, error) {
	if p.entries == nil {
		return buildVerified(p.code, sc, wanted)
	}
	var arr [128]byte
	key := planKey(arr[:0], sc, wanted)
	p.mu.Lock()
	if elem, ok := p.entries[string(key)]; ok {
		p.lru.MoveToFront(elem)
		p.hits++
		plan := elem.Value.(*cacheEntry).plan
		p.mu.Unlock()
		return plan, nil
	}
	p.misses++
	p.mu.Unlock()

	plan, err := buildVerified(p.code, sc, wanted)
	if err != nil {
		return nil, err
	}
	p.mu.Lock()
	if elem, ok := p.entries[string(key)]; ok {
		// A concurrent miss built the same plan; keep the newer one.
		elem.Value.(*cacheEntry).plan = plan
		p.lru.MoveToFront(elem)
	} else {
		for p.lru.Len() >= p.capacity {
			oldest := p.lru.Back()
			p.lru.Remove(oldest)
			delete(p.entries, oldest.Value.(*cacheEntry).key)
		}
		k := string(key)
		p.entries[k] = p.lru.PushFront(&cacheEntry{key: k, plan: plan})
	}
	p.mu.Unlock()
	return plan, nil
}

// CacheStats reports the plan cache's hit and miss counters (both zero
// when the cache is disabled). Misses equal the number of plans built.
func (p *Planner) CacheStats() (hits, misses int64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.hits, p.misses
}

// Updater returns the planner's memoized delta-parity updater — the
// read-modify-write small-write path that patches the parity sectors
// one data-strip overwrite touches instead of re-encoding the stripe.
func (p *Planner) Updater() (*core.Updater, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if !p.updaterSet {
		p.updater, p.updaterErr = core.NewUpdater(p.code)
		p.updaterSet = true
	}
	return p.updater, p.updaterErr
}

// DeltaCost reports the sectors a delta update of dataIdx touches
// (read old data + parity, write new data + parity: 1 + column nnz)
// against the sectors a full re-encode moves (the whole stripe), the
// comparison behind the ≥2x delta-update gate.
func (p *Planner) DeltaCost(dataIdx int) (deltaSectors, reencodeSectors int, err error) {
	u, err := p.Updater()
	if err != nil {
		return 0, 0, err
	}
	nnz, err := u.UpdateCost(dataIdx)
	if err != nil {
		return 0, 0, err
	}
	return 1 + nnz, codes.TotalSectors(p.code), nil
}
