package repair

import (
	"fmt"
	"sync"

	"ppm/internal/kernel"
	"ppm/internal/stripe"
)

// runState is the reusable per-execution arena of sector-view slice
// headers, pooled so the repeated-repair path (one plan executed
// against thousands of stripes while a disk rebuilds) allocates
// nothing per stripe.
//
//ppm:nocopy
type runState struct {
	views [][]byte
	used  int
}

var runPool = sync.Pool{New: func() interface{} { return new(runState) }}

func getRun(n int) *runState {
	rs := runPool.Get().(*runState)
	if cap(rs.views) < n {
		//ppm:allow(hotalloc) arena growth: amortised across pooled reuse
		rs.views = make([][]byte, n)
	}
	rs.views = rs.views[:n]
	rs.used = 0
	return rs
}

func (rs *runState) release() {
	for i := range rs.views {
		rs.views[i] = nil // do not pin stripe buffers in the pool
	}
	runPool.Put(rs)
}

// take fills len(cols) views from the arena with the stripe's sector
// buffers.
func (rs *runState) take(st *stripe.Stripe, cols []int) [][]byte {
	v := rs.views[rs.used : rs.used+len(cols) : rs.used+len(cols)]
	rs.used += len(cols)
	for i, c := range cols {
		v[i] = st.Sector(c)
	}
	return v
}

// Execute runs the plan against a stripe whose ReadCols sectors hold
// survivor data; on return the Wanted sectors hold recovered content.
// Steps run in order (later steps consume earlier outputs), serially —
// a repair plan is one or two small products, so the parallel win is
// in pipelining stripes, not splitting a step.
func (p *Plan) Execute(st *stripe.Stripe, stats *kernel.Stats) error {
	return p.ExecuteRange(st, 0, st.SectorSize(), stats)
}

// ExecuteRange is Execute restricted to the [lo, hi) byte sub-range of
// every sector — the partial-stripe path a range-restricted degraded
// read uses. lo and hi must be multiples of the field word size.
// Allocation-free at steady state: view arenas circulate through a
// pool and the kernels run over pre-compiled matrices.
//
//ppm:hotpath
func (p *Plan) ExecuteRange(st *stripe.Stripe, lo, hi int, stats *kernel.Stats) error {
	if err := p.validate(st.N(), st.R(), st.SectorSize(), lo, hi); err != nil {
		return err
	}
	rs := getRun(p.nViews)
	var err error
	for i := range p.Steps {
		s := &p.Steps[i]
		in := rs.take(st, s.In)
		out := rs.take(st, s.Out)
		if err = applyStep(s, in, out, lo, hi, stats); err != nil {
			break
		}
	}
	rs.release()
	return err
}

// applyStep runs one compiled product over prepared views. Kernel
// panics (shape mismatches from hand-assembled steps) come back as
// errors — a failing repair step is reported, never dropped.
//
//ppm:hotpath
func applyStep(s *Step, in, out [][]byte, lo, hi int, stats *kernel.Stats) (err error) {
	defer func() {
		if r := recover(); r != nil {
			//ppm:allow(hotalloc) panic recovery: this branch is the cold failure path
			err = fmt.Errorf("repair: step failed: %v", r)
		}
	}()
	kernel.CompiledProductRange(s.Finv, s.S, s.G, in, out, nil, s.Seq, lo, hi, stats)
	return nil
}
