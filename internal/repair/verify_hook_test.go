package repair_test

// External-package hooks binding the repair planner to the symbolic
// plan verifier (planverify imports repair, so these live in
// repair_test). Every plan the planner builds for a spread of failure
// patterns must verify cleanly, and the PPM_VERIFY_PLANS gate must
// refuse — without caching — a plan a rejecting verifier vetoes.

import (
	"errors"
	"strings"
	"testing"

	"ppm/internal/codes"
	"ppm/internal/planverify"
	"ppm/internal/repair"
)

func restoreRealPlanVerifier() {
	repair.RegisterVerifier(func(c codes.Code, p *repair.Plan) error {
		return planverify.Error(planverify.VerifyRepairPlan(c, p))
	})
}

// TestPlansVerifySymbolically proves every plan shape the planner
// emits for single and double failures on the published SD instance.
func TestPlansVerifySymbolically(t *testing.T) {
	c, err := codes.NewPublishedSD(1)
	if err != nil {
		t.Fatal(err)
	}
	pl := repair.NewPlanner(c)
	total := codes.TotalSectors(c)
	for a := 0; a < total; a++ {
		for b := a; b < total; b++ {
			var faulty []int
			if a == b {
				faulty = []int{a}
			} else {
				faulty = []int{a, b}
			}
			sc, err := codes.NewScenario(c, faulty)
			if err != nil || !codes.Decodable(c, sc) {
				continue
			}
			plan, err := pl.Plan(sc, nil)
			if err != nil {
				t.Fatalf("faulty=%v: %v", faulty, err)
			}
			for _, f := range planverify.VerifyRepairPlan(c, plan) {
				t.Errorf("faulty=%v: %s", faulty, f)
			}
		}
	}
}

// TestVerifyGateRefusesRejectedPlans checks the gated build path:
// a vetoed plan surfaces ErrVerify and is not admitted to the LRU, so
// the next request (with the verifier restored) rebuilds and succeeds.
func TestVerifyGateRefusesRejectedPlans(t *testing.T) {
	defer repair.SetVerifyPlans(repair.SetVerifyPlans(true))
	defer restoreRealPlanVerifier()

	c, err := codes.NewPublishedSD(0)
	if err != nil {
		t.Fatal(err)
	}
	pl := repair.NewPlanner(c)
	sc, err := codes.NewScenario(c, []int{2, 11})
	if err != nil {
		t.Fatal(err)
	}

	boom := errors.New("canned rejection")
	repair.RegisterVerifier(func(codes.Code, *repair.Plan) error { return boom })
	if _, err := pl.Plan(sc, nil); !errors.Is(err, repair.ErrVerify) {
		t.Fatalf("gated plan returned %v, want ErrVerify", err)
	} else if !strings.Contains(err.Error(), "canned rejection") {
		t.Fatalf("rejection cause lost: %v", err)
	}
	if hits, misses := pl.CacheStats(); hits != 0 || misses != 1 {
		t.Fatalf("after one rejected build: hits=%d misses=%d, want 0/1", hits, misses)
	}

	restoreRealPlanVerifier()
	plan, err := pl.Plan(sc, nil)
	if err != nil {
		t.Fatalf("replan after rejection failed: %v (rejected plan leaked into the cache?)", err)
	}
	if _, misses := pl.CacheStats(); misses != 2 {
		t.Fatalf("replan did not miss (misses=%d): the rejected plan was cached", misses)
	}
	for _, f := range planverify.VerifyRepairPlan(c, plan) {
		t.Errorf("%s", f)
	}
}

// TestVerifyGateCoversUncachedPlanner pins that a cache-disabled
// planner still routes builds through the gate.
func TestVerifyGateCoversUncachedPlanner(t *testing.T) {
	defer repair.SetVerifyPlans(repair.SetVerifyPlans(true))
	defer restoreRealPlanVerifier()

	c, err := codes.NewPublishedSD(0)
	if err != nil {
		t.Fatal(err)
	}
	pl := repair.NewPlanner(c, repair.WithCacheSize(0))
	sc, err := codes.NewScenario(c, []int{5})
	if err != nil {
		t.Fatal(err)
	}
	repair.RegisterVerifier(func(codes.Code, *repair.Plan) error { return errors.New("no") })
	if _, err := pl.Plan(sc, nil); !errors.Is(err, repair.ErrVerify) {
		t.Fatalf("uncached gated plan returned %v, want ErrVerify", err)
	}
}
