//go:build race

package repair

// raceEnabled reports whether the race detector instruments this build.
const raceEnabled = true
