package decode

import (
	"bytes"
	"fmt"

	"ppm/internal/codes"
	"ppm/internal/stripe"
)

// Silent-corruption scrubbing (extension). The paper motivates SD/PMDS
// with latent sector errors *and* data corruption ([12], [13]): a
// sector can return wrong bytes without any I/O error, so nothing marks
// it faulty. The parity-check method localises a single corrupted
// sector from the syndrome alone: if sector c was perturbed by delta,
//
//	syndrome_i = H[i][c] * delta          for every check row i,
//
// so the corrupted column is the unique c whose coefficient pattern is
// consistent with the syndrome across all rows. Once located, the
// sector is recovered as an ordinary single erasure.

// ScrubResult reports what a scrub found.
type ScrubResult struct {
	// Clean is true when the stripe verifies (no corruption).
	Clean bool
	// Located is true when exactly one corrupted sector was identified.
	Located bool
	// Sector is the corrupted sector's global index when Located.
	Sector int
}

// Scrub checks the stripe and, if exactly one sector is silently
// corrupted, locates it. Multi-sector corruption is reported as
// not-locatable (the syndrome is then a mix of columns); callers fall
// back to device-level diagnostics, exactly as real scrubbers do.
//
//ppm:counted scrubbing is outside the paper's encode/decode cost model; no figure consumes its counts
func Scrub(c codes.Code, st *stripe.Stripe) (ScrubResult, error) {
	if err := checkGeometry(c, st); err != nil {
		return ScrubResult{}, err
	}
	h := c.ParityCheck()
	f := c.Field()
	size := st.SectorSize()

	// Syndrome regions: s_i = Σ_col H[i][col] * b_col.
	syndromes := make([][]byte, h.Rows())
	anyNonzero := false
	for i := 0; i < h.Rows(); i++ {
		acc := make([]byte, size)
		row := h.Row(i)
		for col, a := range row {
			if a != 0 {
				f.MultXORs(acc, st.Sector(col), a)
			}
		}
		syndromes[i] = acc
		if !isZero(acc) {
			anyNonzero = true
		}
	}
	if !anyNonzero {
		return ScrubResult{Clean: true}, nil
	}

	// A column "explains" the syndrome when some delta reproduces every
	// row. Localisation needs a *unique* explanation: codes whose H
	// columns are pairwise dependent (e.g. a single parity row) cannot
	// distinguish the sectors a row covers, and a scrub must say so
	// rather than guess.
	delta := make([]byte, size)
	expect := make([]byte, size)
	located := -1
	for col := 0; col < h.Cols(); col++ {
		ref := -1
		for i := 0; i < h.Rows(); i++ {
			if h.At(i, col) != 0 {
				ref = i
				break
			}
		}
		if ref < 0 {
			continue
		}
		f.MulRegion(delta, syndromes[ref], f.Inv(h.At(ref, col)))
		if isZero(delta) {
			continue // this column cannot explain a nonzero syndrome
		}
		match := true
		for i := 0; i < h.Rows() && match; i++ {
			a := h.At(i, col)
			if a == 0 {
				match = isZero(syndromes[i])
				continue
			}
			f.MulRegion(expect, delta, a)
			match = bytes.Equal(expect, syndromes[i])
		}
		if match {
			if located >= 0 {
				return ScrubResult{}, nil // ambiguous: at least two explanations
			}
			located = col
		}
	}
	if located >= 0 {
		return ScrubResult{Located: true, Sector: located}, nil
	}
	return ScrubResult{}, nil
}

// ScrubAndRepair scrubs the stripe and, when a single corrupted sector
// is located, recovers it in place. Returns the scrub result; a located
// sector is already repaired on return.
func ScrubAndRepair(c codes.Code, st *stripe.Stripe, opts Options) (ScrubResult, error) {
	res, err := Scrub(c, st)
	if err != nil || res.Clean || !res.Located {
		return res, err
	}
	sc, err := codes.NewScenario(c, []int{res.Sector})
	if err != nil {
		return res, err
	}
	if err := Decode(c, st, sc, opts); err != nil {
		return res, fmt.Errorf("decode: repairing located sector %d: %w", res.Sector, err)
	}
	return res, nil
}

func isZero(b []byte) bool {
	for _, v := range b {
		if v != 0 {
			return false
		}
	}
	return true
}
