package decode

import (
	"math/rand"
	"strings"
	"testing"

	"ppm/internal/codes"
	"ppm/internal/matrix"
)

// malformedCode wraps a real code but reports a parity-check matrix
// with one extra column, so the decode path references a sector the
// stripe does not have — the kind of shape violation that used to
// escape as a panic.
type malformedCode struct {
	codes.Code
	h *matrix.Matrix
}

func (m malformedCode) ParityCheck() *matrix.Matrix { return m.h }

func newMalformedCode(t *testing.T, c codes.Code) malformedCode {
	t.Helper()
	h := c.ParityCheck()
	bad := matrix.New(c.Field(), h.Rows(), h.Cols()+1)
	for r := 0; r < h.Rows(); r++ {
		for col := 0; col < h.Cols(); col++ {
			bad.Set(r, col, h.At(r, col))
		}
		bad.Set(r, h.Cols(), 1) // the phantom sector appears in every row
	}
	return malformedCode{Code: c, h: bad}
}

// TestBlockParallelInjectedFailureReturnsError: a malformed code must
// surface as a returned error from every worker configuration — never a
// process crash, never a silently incomplete decode.
func TestBlockParallelInjectedFailureReturnsError(t *testing.T) {
	sd, err := codes.NewSD(6, 6, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(151))
	sc, err := sd.WorstCaseScenario(rng, 1)
	if err != nil {
		t.Fatal(err)
	}
	bad := newMalformedCode(t, sd)
	st := encodedStripe(t, sd, 64, 152)
	st.Scribble(1, sc.Faulty)
	for _, threads := range []int{1, 4} {
		err := DecodeBlockParallel(bad, st.Clone(), sc, threads, Options{})
		if err == nil {
			t.Fatalf("threads=%d: malformed parity-check accepted", threads)
		}
		if !strings.Contains(err.Error(), "decode:") {
			t.Fatalf("threads=%d: unexpected error %v", threads, err)
		}
	}
}
