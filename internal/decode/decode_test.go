package decode

import (
	"math/rand"
	"testing"

	"ppm/internal/codes"
	"ppm/internal/gf"
	"ppm/internal/kernel"
	"ppm/internal/stripe"
)

func paperSD(t *testing.T) *codes.SD {
	t.Helper()
	sd, err := codes.NewSDWithCoefficients(4, 4, 1, 1, gf.GF8, []uint32{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	return sd
}

// encodedStripe builds a random-data, traditionally encoded stripe.
func encodedStripe(t *testing.T, c codes.Code, sectorSize int, seed int64) *stripe.Stripe {
	t.Helper()
	st, err := stripe.New(c.NumStrips(), c.NumRows(), sectorSize)
	if err != nil {
		t.Fatal(err)
	}
	st.FillDataRandom(seed, codes.DataPositions(c))
	if err := Encode(c, st, Options{}); err != nil {
		t.Fatalf("encode: %v", err)
	}
	return st
}

func TestEncodeProducesCodeword(t *testing.T) {
	for _, mk := range []func() (codes.Code, error){
		func() (codes.Code, error) { return codes.NewSDWithCoefficients(4, 4, 1, 1, gf.GF8, []uint32{1, 2}) },
		func() (codes.Code, error) { return codes.NewLRC(12, 3, 2) },
		func() (codes.Code, error) { return codes.NewRS(8, 4, 2) },
	} {
		c, err := mk()
		if err != nil {
			t.Fatal(err)
		}
		st := encodedStripe(t, c, 64, 100)
		ok, err := Verify(c, st)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatalf("%s: encoded stripe fails H*B = 0", c.Name())
		}
	}
}

func TestVerifyDetectsCorruption(t *testing.T) {
	sd := paperSD(t)
	st := encodedStripe(t, sd, 64, 101)
	st.Sector(5)[3] ^= 0x01
	ok, err := Verify(sd, st)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("corrupted stripe passed Verify")
	}
}

func TestDecodePaperScenario(t *testing.T) {
	sd := paperSD(t)
	st := encodedStripe(t, sd, 64, 102)
	want := st.Clone()

	sc, err := codes.NewScenario(sd, []int{2, 6, 10, 13, 14})
	if err != nil {
		t.Fatal(err)
	}
	st.Scribble(999, sc.Faulty)

	for _, seq := range []kernel.Sequence{kernel.Normal, kernel.MatrixFirst} {
		damaged := st.Clone()
		if err := Decode(sd, damaged, sc, Options{Sequence: seq}); err != nil {
			t.Fatalf("%v: %v", seq, err)
		}
		if !damaged.Equal(want) {
			t.Fatalf("%v: decode did not restore the stripe", seq)
		}
	}
}

// TestDecodeCostsMatchPaper pins the measured mult_XORs of the worked
// example against the paper's §II-B numbers: C1 = 35, C2 = 31.
func TestDecodeCostsMatchPaper(t *testing.T) {
	sd := paperSD(t)
	st := encodedStripe(t, sd, 64, 103)
	sc, err := codes.NewScenario(sd, []int{2, 6, 10, 13, 14})
	if err != nil {
		t.Fatal(err)
	}
	st.Scribble(999, sc.Faulty)

	var c1 kernel.Stats
	if err := Decode(sd, st.Clone(), sc, Options{Sequence: kernel.Normal, Stats: &c1}); err != nil {
		t.Fatal(err)
	}
	if c1.MultXORs() != 35 {
		t.Fatalf("C1 = %d, paper says 35", c1.MultXORs())
	}

	var c2 kernel.Stats
	if err := Decode(sd, st.Clone(), sc, Options{Sequence: kernel.MatrixFirst, Stats: &c2}); err != nil {
		t.Fatal(err)
	}
	if c2.MultXORs() != 31 {
		t.Fatalf("C2 = %d, paper says 31", c2.MultXORs())
	}
}

func TestDecodeRandomScenarios(t *testing.T) {
	rng := rand.New(rand.NewSource(110))
	sd, err := codes.NewSD(8, 8, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	st := encodedStripe(t, sd, 32, 104)
	want := st.Clone()
	for trial := 0; trial < 10; trial++ {
		for z := 1; z <= 2; z++ {
			sc, err := sd.WorstCaseScenario(rng, z)
			if err != nil {
				t.Fatal(err)
			}
			damaged := st.Clone()
			damaged.Scribble(int64(trial), sc.Faulty)
			if err := Decode(sd, damaged, sc, Options{}); err != nil {
				t.Fatal(err)
			}
			if !damaged.Equal(want) {
				t.Fatalf("trial %d z %d: wrong recovery", trial, z)
			}
		}
	}
}

func TestDecodeLRCDegradedRead(t *testing.T) {
	lrc, err := codes.NewLRC(12, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	st := encodedStripe(t, lrc, 64, 105)
	want := st.Clone()
	rng := rand.New(rand.NewSource(111))
	for trial := 0; trial < 12; trial++ {
		sc := lrc.DegradedReadScenario(rng)
		damaged := st.Clone()
		damaged.Erase(sc.Faulty)
		var stats kernel.Stats
		if err := Decode(lrc, damaged, sc, Options{Stats: &stats}); err != nil {
			t.Fatal(err)
		}
		if !damaged.Equal(want) {
			t.Fatal("degraded read wrong")
		}
		// The greedy pivot selection must have used the local row:
		// group size + 1 operations at most (local group + F^-1),
		// far fewer than the k+1-wide global row would cost.
		groupSize := 4 // k=12, l=3
		if stats.MultXORs() > int64(groupSize+1) {
			t.Fatalf("degraded read cost %d; local-row path should cost <= %d",
				stats.MultXORs(), groupSize+1)
		}
	}
}

func TestDecodeEmptyScenario(t *testing.T) {
	sd := paperSD(t)
	st := encodedStripe(t, sd, 64, 106)
	want := st.Clone()
	if err := Decode(sd, st, codes.Scenario{}, Options{}); err != nil {
		t.Fatal(err)
	}
	if !st.Equal(want) {
		t.Fatal("empty decode modified the stripe")
	}
}

func TestDecodeTooManyErasures(t *testing.T) {
	sd := paperSD(t)
	st := encodedStripe(t, sd, 64, 107)
	sc, err := codes.NewScenario(sd, []int{0, 1, 2, 4, 5, 6})
	if err != nil {
		t.Fatal(err)
	}
	if err := Decode(sd, st, sc, Options{}); err == nil {
		t.Fatal("6 erasures accepted with 5 check rows")
	}
}

func TestDecodeUnrecoverablePattern(t *testing.T) {
	// Two sectors in the same stripe row of an m=1 RS code: F singular.
	rs, err := codes.NewRS(4, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	st := encodedStripe(t, rs, 64, 108)
	sc, err := codes.NewScenario(rs, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := Decode(rs, st, sc, Options{}); err == nil {
		t.Fatal("unrecoverable pattern accepted")
	}
}

func TestGeometryMismatch(t *testing.T) {
	sd := paperSD(t)
	st, err := stripe.New(5, 4, 64)
	if err != nil {
		t.Fatal(err)
	}
	if err := Decode(sd, st, codes.Scenario{Faulty: []int{0}}, Options{}); err == nil {
		t.Fatal("geometry mismatch accepted")
	}
	if _, err := Verify(sd, st); err == nil {
		t.Fatal("Verify accepted mismatched stripe")
	}
}

func TestSectorAlignmentForWideFields(t *testing.T) {
	// GF(2^16) code with sector size 6 (not a multiple of 2 words of 4
	// bytes... 6 is a multiple of 2 but stripe.New requires multiples
	// of 4, which covers all fields). 4-byte sectors work everywhere.
	sd, err := codes.NewSD(16, 16, 1, 1) // w=16 instance
	if err != nil {
		t.Fatal(err)
	}
	if sd.Field().W() != 16 {
		t.Skip("expected a GF(2^16) instance")
	}
	st, err := stripe.New(16, 16, 4)
	if err != nil {
		t.Fatal(err)
	}
	st.FillDataRandom(1, codes.DataPositions(sd))
	if err := Encode(sd, st, Options{}); err != nil {
		t.Fatal(err)
	}
	ok, err := Verify(sd, st)
	if err != nil || !ok {
		t.Fatalf("ok=%v err=%v", ok, err)
	}
}
