// Package decode implements the traditional parity-check-matrix
// encoding/decoding process of §II-B — the serial, whole-matrix baseline
// that PPM is measured against:
//
//	Step 1: derive H from the code definition.
//	Step 2: split H's columns into F (faulty) and S (surviving).
//	Step 3: invert F.
//	Step 4: BF = F^-1 * S * BS.
//
// Both calculation sequences are supported: Normal (cost C1) and
// MatrixFirst (cost C2). Encoding is performed as the special decode
// whose erasures are the parity positions.
package decode

import (
	"fmt"

	"ppm/internal/codes"
	"ppm/internal/gf"
	"ppm/internal/kernel"
	"ppm/internal/stripe"
)

// Options configure a traditional decode.
type Options struct {
	// Sequence is the calculation order; the open-source SD decoder the
	// paper builds on uses Normal, so that is the zero value.
	Sequence kernel.Sequence
	// Stats, if non-nil, accumulates mult_XORs counts.
	Stats *kernel.Stats
}

// Decode recovers the scenario's faulty sectors of st in place from the
// surviving sectors. The faulty buffers' prior contents are ignored and
// overwritten. Returns codes/matrix errors for unrecoverable patterns.
func Decode(c codes.Code, st *stripe.Stripe, sc codes.Scenario, opts Options) error {
	if err := checkGeometry(c, st); err != nil {
		return err
	}
	if len(sc.Faulty) == 0 {
		return nil
	}
	h := c.ParityCheck()
	faulty := sc.FaultySet()

	// Step 2: F from faulty columns, S from surviving columns.
	fM, sM, fCols, sCols := h.SplitColumns(func(col int) bool { return faulty[col] })
	if fM.Rows() < fM.Cols() {
		return fmt.Errorf("decode: %d erasures exceed %d parity-check rows of %s", fM.Cols(), fM.Rows(), c.Name())
	}
	if fM.Rows() > fM.Cols() {
		// Over-determined (fewer erasures than equations): keep a square
		// invertible subset of equations.
		rows, err := fM.PivotRows()
		if err != nil {
			return fmt.Errorf("decode: %s cannot recover pattern %v: %w", c.Name(), sc.Faulty, err)
		}
		fM = fM.SelectRows(rows)
		sM = sM.SelectRows(rows)
	}

	// Step 3: invert F.
	finv, err := fM.Invert()
	if err != nil {
		return fmt.Errorf("decode: %s cannot recover pattern %v: %w", c.Name(), sc.Faulty, err)
	}

	// Step 4: BF = F^-1 * S * BS into the faulty sectors.
	in := st.Sectors(sCols)
	out := st.Sectors(fCols)
	kernel.Product(c.Field(), finv, sM, in, out, nil, opts.Sequence, opts.Stats)
	return nil
}

// Encode computes all parity sectors of st in place from the data
// sectors ("the encoding process ... is a special case of the decoding
// process", §II-B).
func Encode(c codes.Code, st *stripe.Stripe, opts Options) error {
	return Decode(c, st, codes.EncodingScenario(c), opts)
}

// Verify checks H * B == 0 over the stripe contents, region-wise: the
// stripe holds a codeword iff every parity-check row XOR-sums to zero.
//
//ppm:counted verification is outside the paper's encode/decode cost model; no figure consumes its counts
func Verify(c codes.Code, st *stripe.Stripe) (bool, error) {
	if err := checkGeometry(c, st); err != nil {
		return false, err
	}
	h := c.ParityCheck()
	f := c.Field()
	acc := make([]byte, st.SectorSize())
	// One multiplier per distinct coefficient across the whole check —
	// H's coefficients repeat heavily (all-ones rows, shared powers), so
	// this keeps a many-stripe verify at compiled-table speed.
	mults := make(map[uint32]gf.Multiplier)
	for i := 0; i < h.Rows(); i++ {
		for j := range acc {
			acc[j] = 0
		}
		row := h.Row(i)
		for col, a := range row {
			if a == 0 {
				continue
			}
			mult, ok := mults[a]
			if !ok {
				mult = gf.MultiplierFor(f, a)
				mults[a] = mult
			}
			mult.MultXOR(acc, st.Sector(col))
		}
		for _, b := range acc {
			if b != 0 {
				return false, nil
			}
		}
	}
	return true, nil
}

func checkGeometry(c codes.Code, st *stripe.Stripe) error {
	if st.N() != c.NumStrips() || st.R() != c.NumRows() {
		return fmt.Errorf("decode: stripe %dx%d does not match code %s (%dx%d)",
			st.N(), st.R(), c.Name(), c.NumStrips(), c.NumRows())
	}
	if st.SectorSize()%c.Field().WordBytes() != 0 {
		return fmt.Errorf("decode: sector size %d not a multiple of GF(2^%d) words",
			st.SectorSize(), c.Field().W())
	}
	return nil
}
