package decode

import (
	"math/rand"
	"reflect"
	"testing"

	"ppm/internal/codes"
	"ppm/internal/kernel"
)

func TestBlockParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(131))
	sd, err := codes.NewSD(8, 8, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	st := encodedStripe(t, sd, 64, 132)
	want := st.Clone()
	for trial := 0; trial < 5; trial++ {
		sc, err := sd.WorstCaseScenario(rng, 1)
		if err != nil {
			t.Fatal(err)
		}
		for _, threads := range []int{1, 2, 3, 7} {
			damaged := st.Clone()
			damaged.Scribble(int64(trial), sc.Faulty)
			if err := DecodeBlockParallel(sd, damaged, sc, threads, Options{}); err != nil {
				t.Fatalf("threads=%d: %v", threads, err)
			}
			if !damaged.Equal(want) {
				t.Fatalf("threads=%d: wrong recovery", threads)
			}
		}
	}
}

// TestBlockParallelCostIsC1: block-level parallelism does not reduce
// the computation — its normalised cost equals the serial C1.
func TestBlockParallelCostIsC1(t *testing.T) {
	sd, err := codes.NewSD(6, 6, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(133))
	sc, err := sd.WorstCaseScenario(rng, 1)
	if err != nil {
		t.Fatal(err)
	}
	st := encodedStripe(t, sd, 64, 134)
	st.Scribble(1, sc.Faulty)

	var serial kernel.Stats
	if err := Decode(sd, st.Clone(), sc, Options{Stats: &serial}); err != nil {
		t.Fatal(err)
	}
	var parallel kernel.Stats
	if err := DecodeBlockParallel(sd, st.Clone(), sc, 4, Options{Stats: &parallel}); err != nil {
		t.Fatal(err)
	}
	if serial.MultXORs() != parallel.MultXORs() {
		t.Fatalf("serial C1 = %d, block-parallel normalised cost = %d",
			serial.MultXORs(), parallel.MultXORs())
	}
}

func TestBlockParallelEmptyAndErrors(t *testing.T) {
	sd, err := codes.NewSD(6, 6, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	st := encodedStripe(t, sd, 64, 135)
	want := st.Clone()
	if err := DecodeBlockParallel(sd, st, codes.Scenario{}, 4, Options{}); err != nil {
		t.Fatal(err)
	}
	if !st.Equal(want) {
		t.Fatal("empty decode touched the stripe")
	}
	// Too many erasures.
	sc, err := codes.NewScenario(sd, []int{0, 1, 2, 3, 4, 6, 7, 8, 9, 10, 12, 13, 14, 15})
	if err != nil {
		t.Fatal(err)
	}
	if err := DecodeBlockParallel(sd, st, sc, 4, Options{}); err == nil {
		t.Fatal("over-capacity pattern accepted")
	}
}

func TestChunkRanges(t *testing.T) {
	cases := []struct {
		size, parts, word int
		want              [][2]int
	}{
		{16, 2, 4, [][2]int{{0, 8}, {8, 16}}},
		{12, 4, 4, [][2]int{{0, 4}, {4, 8}, {8, 12}}},   // parts capped at words
		{20, 3, 4, [][2]int{{0, 8}, {8, 16}, {16, 20}}}, // uneven split
		{8, 1, 2, [][2]int{{0, 8}}},
		{4, 9, 4, [][2]int{{0, 4}}},
	}
	for _, c := range cases {
		got := kernel.ChunkRanges(c.size, c.parts, c.word)
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("kernel.ChunkRanges(%d,%d,%d) = %v, want %v", c.size, c.parts, c.word, got, c.want)
		}
		// Coverage and alignment invariants.
		prev := 0
		for _, r := range got {
			if r[0] != prev || r[1] <= r[0] || r[0]%c.word != 0 {
				t.Fatalf("bad range %v in %v", r, got)
			}
			prev = r[1]
		}
		if prev != c.size {
			t.Fatalf("ranges %v do not cover %d bytes", got, c.size)
		}
	}
}
