package decode

import (
	"fmt"
	"sync"

	"ppm/internal/codes"
	"ppm/internal/kernel"
	"ppm/internal/stripe"
)

// DecodeBlockParallel is the block-level parallelism baseline from the
// paper's related work (§V, [36]-[38]): the traditional whole-matrix
// decode, with the *data regions* split into T word-aligned chunks that
// are processed concurrently. It performs exactly the same mult_XORs as
// the serial traditional decode (cost C1 in total — the counter sees
// T partial operations per coefficient, normalised below) but overlaps
// them across workers.
//
// PPM's claim against this family is architectural: block-level
// splitting parallelises the bytes but keeps the serial, whole-matrix
// computation and its C1 cost; PPM's matrix-oriented partition reduces
// the computation itself (C4 < C1) and parallelises along the failure
// structure. The ablation benchmarks compare all three.
func DecodeBlockParallel(c codes.Code, st *stripe.Stripe, sc codes.Scenario, threads int, opts Options) error {
	if err := checkGeometry(c, st); err != nil {
		return err
	}
	if len(sc.Faulty) == 0 {
		return nil
	}
	if threads < 1 {
		threads = 1
	}
	h := c.ParityCheck()
	faulty := sc.FaultySet()

	fM, sM, fCols, sCols := h.SplitColumns(func(col int) bool { return faulty[col] })
	if fM.Rows() < fM.Cols() {
		return fmt.Errorf("decode: %d erasures exceed %d parity-check rows of %s", fM.Cols(), fM.Rows(), c.Name())
	}
	if fM.Rows() > fM.Cols() {
		rows, err := fM.PivotRows()
		if err != nil {
			return fmt.Errorf("decode: %s cannot recover pattern %v: %w", c.Name(), sc.Faulty, err)
		}
		fM = fM.SelectRows(rows)
		sM = sM.SelectRows(rows)
	}
	finv, err := fM.Invert()
	if err != nil {
		return fmt.Errorf("decode: %s cannot recover pattern %v: %w", c.Name(), sc.Faulty, err)
	}

	in := st.Sectors(sCols)
	out := st.Sectors(fCols)

	// Word-aligned chunk boundaries over the sector byte range.
	chunks := kernel.ChunkRanges(st.SectorSize(), threads, c.Field().WordBytes())
	var wg sync.WaitGroup
	for _, ch := range chunks {
		ch := ch
		wg.Add(1)
		go func() {
			defer wg.Done()
			kernel.Product(c.Field(), finv, sM,
				kernel.SliceRegions(in, ch[0], ch[1]),
				kernel.SliceRegions(out, ch[0], ch[1]),
				nil, opts.Sequence, nil)
		}()
	}
	wg.Wait()
	// The stats contract counts one mult_XORs per nonzero coefficient
	// regardless of how the byte range was split.
	if opts.Stats != nil {
		switch opts.Sequence {
		case kernel.MatrixFirst:
			opts.Stats.AddMultXORs(int64(finv.Mul(sM).NNZ()))
		default:
			opts.Stats.AddMultXORs(int64(finv.NNZ() + sM.NNZ()))
		}
	}
	return nil
}
