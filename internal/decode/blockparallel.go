package decode

import (
	"fmt"

	"ppm/internal/codes"
	"ppm/internal/kernel"
	"ppm/internal/matrix"
	"ppm/internal/stripe"
)

// DecodeBlockParallel is the block-level parallelism baseline from the
// paper's related work (§V, [36]-[38]): the traditional whole-matrix
// decode, with the *data regions* split into T word-aligned chunks that
// are processed concurrently. It performs exactly the same mult_XORs as
// the serial traditional decode (cost C1 in total — the counter sees
// T partial operations per coefficient, normalised below) but overlaps
// them across workers.
//
// PPM's claim against this family is architectural: block-level
// splitting parallelises the bytes but keeps the serial, whole-matrix
// computation and its C1 cost; PPM's matrix-oriented partition reduces
// the computation itself (C4 < C1) and parallelises along the failure
// structure. The ablation benchmarks compare all three.
func DecodeBlockParallel(c codes.Code, st *stripe.Stripe, sc codes.Scenario, threads int, opts Options) (err error) {
	if err := checkGeometry(c, st); err != nil {
		return err
	}
	if len(sc.Faulty) == 0 {
		return nil
	}
	if threads < 1 {
		threads = 1
	}
	// A malformed parity-check matrix (or any other kernel-level shape
	// violation) surfaces as a returned error, never a crash or a
	// silently incomplete decode.
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("decode: block-parallel decode failed: %v", r)
		}
	}()
	h := c.ParityCheck()
	faulty := sc.FaultySet()

	fM, sM, fCols, sCols := h.SplitColumns(func(col int) bool { return faulty[col] })
	if fM.Rows() < fM.Cols() {
		return fmt.Errorf("decode: %d erasures exceed %d parity-check rows of %s", fM.Cols(), fM.Rows(), c.Name())
	}
	if fM.Rows() > fM.Cols() {
		rows, perr := fM.PivotRows()
		if perr != nil {
			return fmt.Errorf("decode: %s cannot recover pattern %v: %w", c.Name(), sc.Faulty, perr)
		}
		fM = fM.SelectRows(rows)
		sM = sM.SelectRows(rows)
	}
	finv, err := fM.Invert()
	if err != nil {
		return fmt.Errorf("decode: %s cannot recover pattern %v: %w", c.Name(), sc.Faulty, err)
	}
	// The matrices are compiled exactly once — into fused, table-bound
	// row kernels shared by every chunk worker — so T threads pay one
	// lowering, not T. For MatrixFirst the scalar product F^-1 * S is
	// likewise computed once (the serial baseline recomputed it per
	// chunk plus once for stats).
	var cFinv, cS, cG *kernel.CompiledMatrix
	var g *matrix.Matrix
	if opts.Sequence == kernel.MatrixFirst {
		g = finv.Mul(sM)
		cG = kernel.Compile(c.Field(), g)
	} else {
		cFinv = kernel.Compile(c.Field(), finv)
		cS = kernel.Compile(c.Field(), sM)
	}

	in := st.Sectors(sCols)
	out := st.Sectors(fCols)

	// Word-aligned (and, when the range is large enough, tile-aligned —
	// so chunk splits compose with the kernel's cache blocking instead
	// of shearing tiles across workers) chunk boundaries over the sector
	// byte range, fanned out on the persistent worker pool. Each chunk
	// runs the serial tiled range product; a failing chunk (lowest chunk
	// index wins) aborts the decode with its error.
	chunks := kernel.ChunkRangesAligned(st.SectorSize(), threads, c.Field().WordBytes())
	//ppm:hotpath
	err = kernel.DefaultWorkers().Run(len(chunks), func(i int) error {
		ch := chunks[i]
		kernel.CompiledProductRange(cFinv, cS, cG, in, out, nil, opts.Sequence, ch[0], ch[1], nil)
		return nil
	})
	if err != nil {
		return err
	}
	// The stats contract counts one mult_XORs per nonzero coefficient
	// regardless of how the byte range was split.
	if opts.Stats != nil {
		if g != nil {
			opts.Stats.AddMultXORs(int64(g.NNZ()))
		} else {
			opts.Stats.AddMultXORs(int64(finv.NNZ() + sM.NNZ()))
		}
	}
	return nil
}
