package decode

import (
	"math/rand"
	"testing"

	"ppm/internal/codes"
)

func TestScrubCleanStripe(t *testing.T) {
	sd := paperSD(t)
	st := encodedStripe(t, sd, 64, 901)
	res, err := Scrub(sd, st)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Clean || res.Located {
		t.Fatalf("clean stripe scrub = %+v", res)
	}
}

// TestScrubLocatesSingleCorruption: for codes whose H columns are
// pairwise independent, every single-sector corruption is located.
func TestScrubLocatesSingleCorruption(t *testing.T) {
	rng := rand.New(rand.NewSource(902))
	sd, err := codes.NewSD(6, 6, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	st := encodedStripe(t, sd, 64, 903)
	for trial := 0; trial < 15; trial++ {
		victim := rng.Intn(codes.TotalSectors(sd))
		damaged := st.Clone()
		sec := damaged.Sector(victim)
		sec[rng.Intn(len(sec))] ^= byte(1 + rng.Intn(255))

		res, err := Scrub(sd, damaged)
		if err != nil {
			t.Fatal(err)
		}
		if res.Clean {
			t.Fatalf("trial %d: corruption of %d not detected", trial, victim)
		}
		if !res.Located || res.Sector != victim {
			t.Fatalf("trial %d: located %+v, corrupted %d", trial, res, victim)
		}
	}
}

func TestScrubAndRepair(t *testing.T) {
	rng := rand.New(rand.NewSource(904))
	sd, err := codes.NewSD(6, 6, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	st := encodedStripe(t, sd, 64, 905)
	want := st.Clone()
	victim := rng.Intn(codes.TotalSectors(sd))
	st.Scribble(7, []int{victim})

	res, err := ScrubAndRepair(sd, st, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Located || res.Sector != victim {
		t.Fatalf("res = %+v, victim = %d", res, victim)
	}
	if !st.Equal(want) {
		t.Fatal("repair did not restore the stripe")
	}

	// Idempotent: a second scrub is clean.
	res, err = ScrubAndRepair(sd, st, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Clean {
		t.Fatalf("post-repair scrub = %+v", res)
	}
}

// TestScrubAmbiguity: a single-parity code (RS m=1) cannot localise —
// every sector of a stripe row explains the syndrome equally well — and
// Scrub must refuse rather than guess.
func TestScrubAmbiguity(t *testing.T) {
	rs, err := codes.NewRS(5, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	st := encodedStripe(t, rs, 64, 906)
	st.Sector(1)[0] ^= 0x5A
	res, err := Scrub(rs, st)
	if err != nil {
		t.Fatal(err)
	}
	if res.Clean {
		t.Fatal("corruption not detected")
	}
	if res.Located {
		t.Fatalf("ambiguous corruption was 'located' at %d", res.Sector)
	}
}

// TestScrubMultiCorruption: two corrupted sectors mix two columns; the
// scrub reports detected-but-not-located (unless the mix happens to
// mimic a third column, which these instances' geometry prevents).
func TestScrubMultiCorruption(t *testing.T) {
	sd, err := codes.NewSD(6, 6, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	st := encodedStripe(t, sd, 64, 907)
	// Corrupt two sectors in different stripe rows with distinct noise.
	st.Sector(2)[0] ^= 0x11
	st.Sector(13)[1] ^= 0x22
	res, err := Scrub(sd, st)
	if err != nil {
		t.Fatal(err)
	}
	if res.Clean || res.Located {
		t.Fatalf("double corruption scrub = %+v", res)
	}
}

func TestScrubGeometryMismatch(t *testing.T) {
	sd := paperSD(t)
	other := encodedStripe(t, mustCode(t, 6, 6, 2, 2), 64, 908)
	if _, err := Scrub(sd, other); err == nil {
		t.Fatal("geometry mismatch accepted")
	}
}

func mustCode(t *testing.T, n, r, m, s int) *codes.SD {
	t.Helper()
	sd, err := codes.NewSD(n, r, m, s)
	if err != nil {
		t.Fatal(err)
	}
	return sd
}
