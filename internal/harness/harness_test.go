package harness

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"ppm/internal/codes"
	"ppm/internal/core"
)

// tinyConfig keeps harness tests fast while still exercising the full
// measurement pipeline.
func tinyConfig() Config {
	return Config{
		StripeBytes: 256 << 10,
		Iterations:  1,
		Threads:     4,
		Seed:        3,
		Quick:       true,
	}
}

func TestRegistryComplete(t *testing.T) {
	ids := map[string]bool{}
	for _, e := range Registry() {
		if e.ID == "" || e.Title == "" || e.Run == nil {
			t.Fatalf("incomplete experiment %+v", e)
		}
		if ids[e.ID] {
			t.Fatalf("duplicate id %s", e.ID)
		}
		ids[e.ID] = true
	}
	for _, want := range []string{"fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11", "headline"} {
		if !ids[want] {
			t.Fatalf("missing experiment %s", want)
		}
	}
	if _, ok := Lookup("fig4"); !ok {
		t.Fatal("Lookup failed")
	}
	if _, ok := Lookup("nope"); ok {
		t.Fatal("Lookup found a ghost")
	}
}

func TestAnalysisExperiments(t *testing.T) {
	cfg := tinyConfig()
	for _, id := range []string{"fig4", "fig5", "fig6"} {
		e, _ := Lookup(id)
		var buf bytes.Buffer
		if err := e.Run(&buf, cfg); err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		out := buf.String()
		if len(strings.Split(strings.TrimSpace(out), "\n")) < 3 {
			t.Fatalf("%s produced too little output:\n%s", id, out)
		}
		// Every C4/C1 value must be in (0, 1): PPM strictly cheaper.
		lines := strings.Split(strings.TrimSpace(out), "\n")[1:]
		for _, ln := range lines {
			fields := strings.Fields(ln)
			ratio := fields[len(fields)-1]
			if !strings.HasPrefix(ratio, "0.") {
				t.Fatalf("%s: C4/C1 = %s not in (0,1) in line %q", id, ratio, ln)
			}
		}
	}
}

func TestMeasureDecodeImprovement(t *testing.T) {
	// Wall-clock comparisons are too noisy for CI (and this may run on
	// a single core, where the parallel phase cannot help), so the
	// deterministic claim is checked instead: for a configuration with
	// strong cost reduction, the PPM pipeline performs measurably fewer
	// mult_XORs than the traditional one, and both pipelines time out
	// to sane positive measurements.
	cfg := tinyConfig()
	cfg.StripeBytes = 1 << 20
	cfg.Iterations = 2
	sd, err := newSD(8, 16, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	sc, err := sdWorst(sd, 1, cfg)
	if err != nil {
		t.Fatal(err)
	}
	trad, err := measureDecode(sd, sc, kindTraditional, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ppm, err := measureDecode(sd, sc, kindPPM, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if trad.seconds <= 0 || ppm.seconds <= 0 {
		t.Fatal("non-positive timings")
	}
	plan, err := core.BuildPlan(sd, sc, core.StrategyAuto)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Costs.C4 >= plan.Costs.C1 {
		t.Fatalf("C4 = %d not below C1 = %d for n=8 r=16 m=2 s=2", plan.Costs.C4, plan.Costs.C1)
	}
	if ratio := float64(plan.Costs.C4) / float64(plan.Costs.C1); ratio > 0.9 {
		t.Fatalf("cost reduction only %.1f%%; expected a strong-reduction config", 100*(1-ratio))
	}
}

func TestMeasureEncode(t *testing.T) {
	cfg := tinyConfig()
	sd, err := newSD(6, 8, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	trad, err := measureEncode(sd, kindTraditional, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ppm, err := measureEncode(sd, kindPPM, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if trad.seconds <= 0 || ppm.seconds <= 0 {
		t.Fatal("non-positive timing")
	}
}

func TestFig11Runs(t *testing.T) {
	if testing.Short() {
		t.Skip("LRC sweep builds large instances")
	}
	cfg := tinyConfig()
	e, _ := Lookup("fig11")
	var buf bytes.Buffer
	if err := e.Run(&buf, cfg); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "stripe") || !strings.Contains(buf.String(), "strip") {
		t.Fatalf("missing panels:\n%s", buf.String())
	}
}

func TestLRCSweepCosts(t *testing.T) {
	for _, cse := range lrcSweep {
		lrc, err := codes.NewLRC(cse.k, cse.l, cse.g)
		if err != nil {
			t.Fatalf("(%d,%d,%d): %v", cse.k, cse.l, cse.g, err)
		}
		cost := lrc.StorageCost()
		if cost < 1.05 || cost > 1.75 {
			t.Fatalf("(%d,%d,%d): storage cost %.2f outside the paper's 1.1..1.7", cse.k, cse.l, cse.g, cost)
		}
	}
}

func TestConfigs(t *testing.T) {
	d := DefaultConfig()
	if d.StripeBytes <= 0 || d.Iterations < 1 {
		t.Fatal("bad default config")
	}
	p := PaperConfig()
	if p.StripeBytes != 32<<20 || p.Iterations != 10 || p.Threads != 4 {
		t.Fatal("paper config drifted from the paper")
	}
}

func TestImprovementMath(t *testing.T) {
	trad := measurement{seconds: 2, bytes: 1 << 20}
	ppm := measurement{seconds: 1, bytes: 1 << 20}
	if got := improvement(trad, ppm); got != 1.0 {
		t.Fatalf("improvement = %.2f, want 1.0 (twice as fast = +100%%)", got)
	}
	if mbps := ppm.throughputMBps(); mbps < 1.0 || mbps > 1.1 {
		t.Fatalf("throughput = %f", mbps)
	}
}

func TestEncodeExperiment(t *testing.T) {
	cfg := tinyConfig()
	e, ok := Lookup("encode")
	if !ok {
		t.Fatal("encode experiment missing")
	}
	var buf bytes.Buffer
	if err := e.Run(&buf, cfg); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "trad_MBps") {
		t.Fatalf("unexpected output:\n%s", out)
	}
	// Every encode plan must expose parallelism: p >= r - s (coding
	// sectors occupy at most s rows).
	lines := strings.Split(strings.TrimSpace(out), "\n")[1:]
	if len(lines) < 4 {
		t.Fatalf("too few rows:\n%s", out)
	}
}

func TestAblationExperiment(t *testing.T) {
	cfg := tinyConfig()
	e, ok := Lookup("ablation")
	if !ok {
		t.Fatal("ablation experiment missing")
	}
	var buf bytes.Buffer
	if err := e.Run(&buf, cfg); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, variant := range []string{"trad", "block-par", "ppm-T1", "ppm", "ppm-hybrid"} {
		if !strings.Contains(out, variant) {
			t.Fatalf("variant %s missing:\n%s", variant, out)
		}
	}
	// Structural check: within each config, trad and block-par report
	// identical mult_XORs (both are C1) and ppm variants report fewer.
	type key struct{ m, s, n string }
	ops := map[key]map[string]string{}
	for _, ln := range strings.Split(strings.TrimSpace(out), "\n")[1:] {
		f := strings.Fields(ln)
		if len(f) != 6 {
			t.Fatalf("bad row %q", ln)
		}
		k := key{f[0], f[1], f[2]}
		if ops[k] == nil {
			ops[k] = map[string]string{}
		}
		ops[k][f[3]] = f[5]
	}
	for k, v := range ops {
		if v["trad"] != v["block-par"] {
			t.Fatalf("%v: trad ops %s != block-par ops %s", k, v["trad"], v["block-par"])
		}
		if v["ppm"] != v["ppm-T1"] || v["ppm"] != v["ppm-hybrid"] {
			t.Fatalf("%v: ppm variants disagree on ops: %v", k, v)
		}
	}
}

// TestPerfExperimentsSmoke drives every timing experiment end to end on
// a micro configuration; output shape only, no timing assertions.
func TestPerfExperimentsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every experiment")
	}
	cfg := Config{
		StripeBytes: 64 << 10,
		Iterations:  1,
		Threads:     2,
		Seed:        5,
		Quick:       true,
	}
	for _, id := range []string{"fig7", "fig8", "fig9", "fig10", "headline"} {
		id := id
		t.Run(id, func(t *testing.T) {
			e, ok := Lookup(id)
			if !ok {
				t.Fatalf("%s missing", id)
			}
			var buf bytes.Buffer
			if err := e.Run(&buf, cfg); err != nil {
				t.Fatal(err)
			}
			if buf.Len() == 0 {
				t.Fatal("no output")
			}
		})
	}
}

func TestDegradedExperiment(t *testing.T) {
	cfg := tinyConfig()
	e, ok := Lookup("degraded")
	if !ok {
		t.Fatal("degraded experiment missing")
	}
	var buf bytes.Buffer
	if err := e.Run(&buf, cfg); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"LRC(12,3,2)", "RS(17,12)", "SD(8,16,2,2)", "ops_per_read"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q:\n%s", want, out)
		}
	}
	// LRC's reconstruction width must be the smallest of the three.
	var lrcOps, rsOps float64
	for _, ln := range strings.Split(strings.TrimSpace(out), "\n")[1:] {
		f := strings.Fields(ln)
		if len(f) < 5 || f[1] != "uniform" {
			continue
		}
		switch f[0] {
		case "LRC(12,3,2)":
			fmt.Sscanf(f[4], "%f", &lrcOps)
		case "RS(17,12)":
			fmt.Sscanf(f[4], "%f", &rsOps)
		}
	}
	if lrcOps <= 0 || rsOps <= 0 || lrcOps >= rsOps {
		t.Fatalf("LRC ops %.1f vs RS ops %.1f: expected LRC < RS", lrcOps, rsOps)
	}
}

// TestFullGridAnalytic runs the analytic experiments on the unthinned
// paper grid (n = 6..24 by 1, all nine (m,s) pairs) — cheap because no
// data moves, and it exercises the full-grid code path that -full uses.
func TestFullGridAnalytic(t *testing.T) {
	if testing.Short() {
		t.Skip("full grid")
	}
	cfg := tinyConfig()
	cfg.Quick = false
	e, _ := Lookup("fig4")
	var buf bytes.Buffer
	if err := e.Run(&buf, cfg); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	// 9 (m,s) pairs x 19 n values, minus skipped m >= n rows (none for
	// n >= 6 and m <= 3).
	if got := len(lines) - 1; got != 9*19 {
		t.Fatalf("full fig4 grid produced %d rows, want 171", got)
	}
}

func TestChaosExperiment(t *testing.T) {
	cfg := tinyConfig()
	e, ok := Lookup("chaos")
	if !ok {
		t.Fatal("chaos experiment missing")
	}
	var buf bytes.Buffer
	if err := e.Run(&buf, cfg); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"recovered byte-identical", // every geometry survived its storm
		"hang@",                    // the schedule spec is printed for replay
		"SD(6,4,2,1)", "LRC(6,2,2)", "RS(6,2)",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}
