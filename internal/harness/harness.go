// Package harness regenerates the paper's evaluation: one experiment
// per data figure (Figures 4-11) plus the headline aggregates, printing
// the same series the paper plots. The cmd/ppmbench binary exposes the
// registry on the command line and EXPERIMENTS.md records paper-vs-
// measured values.
package harness

import (
	"fmt"
	"io"
	"math/rand"
	"runtime"
	"sort"
	"text/tabwriter"
	"time"

	"ppm/internal/codes"
	"ppm/internal/core"
	"ppm/internal/decode"
	"ppm/internal/stripe"
)

// Config scales the experiments. The zero value is not usable; start
// from DefaultConfig (CI-friendly) or PaperConfig (the paper's sizes).
type Config struct {
	// StripeBytes is the total stripe size; the paper uses 32 MB.
	StripeBytes int
	// Iterations per measurement; the paper averages 10 runs.
	Iterations int
	// Threads is T for the PPM parallel phase; the paper uses
	// min(4, cores).
	Threads int
	// Seed drives scenario generation.
	Seed int64
	// Quick thins the parameter grids for fast runs.
	Quick bool
}

// DefaultConfig is sized to finish the full registry in a few minutes.
func DefaultConfig() Config {
	return Config{
		StripeBytes: 4 << 20,
		Iterations:  3,
		Threads:     0, // min(4, cores)
		Seed:        1,
		Quick:       true,
	}
}

// PaperConfig mirrors the paper's measurement parameters.
func PaperConfig() Config {
	return Config{
		StripeBytes: 32 << 20,
		Iterations:  10,
		Threads:     4,
		Seed:        1,
		Quick:       false,
	}
}

// Experiment is one reproducible evaluation unit.
type Experiment struct {
	ID    string
	Title string
	Run   func(w io.Writer, cfg Config) error
}

// Registry lists all experiments in figure order.
func Registry() []Experiment {
	return []Experiment{
		{ID: "fig4", Title: "Cost ratios C2/C1, C3/C1, C4/C1 vs n (r=16, z=1)", Run: runFig4},
		{ID: "fig5", Title: "C4/C1 vs n for z in 1..3 (s=3, r=16)", Run: runFig5},
		{ID: "fig6", Title: "C4/C1 vs n for r in 4..24", Run: runFig6},
		{ID: "fig7", Title: "PPM decode improvement vs thread count T", Run: runFig7},
		{ID: "fig8", Title: "PPM improvement for SD vs n; RS(m+1) reference", Run: runFig8},
		{ID: "fig9", Title: "PPM improvement vs stripe size", Run: runFig9},
		{ID: "fig10", Title: "PPM improvement across core counts (CPU substitution)", Run: runFig10},
		{ID: "fig11", Title: "PPM improvement for LRC vs storage cost", Run: runFig11},
		{ID: "headline", Title: "Aggregate improvements (max/avg, 2-thread)", Run: runHeadline},
		{ID: "encode", Title: "Encoding speed, traditional vs PPM (extension)", Run: runEncodeExp},
		{ID: "ablation", Title: "Mechanism ablation: trad / block-par / ppm-T1 / ppm (extension)", Run: runAblation},
		{ID: "degraded", Title: "Degraded-read latency under load: LRC vs RS vs SD (extension)", Run: runDegraded},
		{ID: "pipeline", Title: "Batch pipeline vs serial per-stripe loop (extension)", Run: runPipelineExp},
		{ID: "chaos", Title: "Chaos storm: checksummed degraded reads under injected faults (extension)", Run: runChaos},
		{ID: "repair", Title: "Minimal-read repair vs full decode; delta updates vs re-encode (extension)", Run: runRepair},
	}
}

// Lookup finds an experiment by ID.
func Lookup(id string) (Experiment, bool) {
	for _, e := range Registry() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// ---------------------------------------------------------------------------
// Measurement plumbing.

// measurement is one decode timing: seconds per stripe decode.
type measurement struct {
	seconds float64
	bytes   int
}

// throughputMBps is decode speed in MB/s over the whole stripe.
func (m measurement) throughputMBps() float64 {
	return float64(m.bytes) / 1e6 / m.seconds
}

// improvement is the paper's improvement ratio: PPM speed over
// traditional speed, minus one (210.81% prints as 2.1081).
func improvement(trad, ppm measurement) float64 {
	return trad.seconds/ppm.seconds - 1
}

// decoderKind selects which pipeline a measurement drives.
type decoderKind int

const (
	kindTraditional decoderKind = iota // whole-matrix Normal sequence (C1)
	kindPPM                            // partition + parallel + C4 sequence
)

// measureDecode times repeated in-place decodes of the scenario. Each
// iteration re-corrupts the faulty sectors and decodes them; planning
// (including matrix inversions) is inside the timed region for both
// pipelines, as in the paper's end-to-end measurement.
func measureDecode(c codes.Code, sc codes.Scenario, kind decoderKind, cfg Config) (measurement, error) {
	st, err := stripe.ForCode(c, cfg.StripeBytes)
	if err != nil {
		return measurement{}, err
	}
	st.FillDataRandom(cfg.Seed, codes.DataPositions(c))
	if err := decode.Encode(c, st, decode.Options{}); err != nil {
		return measurement{}, err
	}

	iters := cfg.Iterations
	if iters < 1 {
		iters = 1
	}
	var dec *core.Decoder
	if kind == kindPPM {
		dec = core.NewDecoder(c, core.WithThreads(cfg.Threads), core.WithStrategy(core.StrategyPPM))
	}

	// One warm-up pass (tables, page faults) plus iters timed passes.
	// The paper reports the mean of 10 runs on dedicated hardware; on a
	// shared host the minimum is the robust estimator of the same
	// quantity, so that is what the harness records.
	best := time.Duration(0)
	for i := -1; i < iters; i++ {
		st.Scribble(cfg.Seed+int64(i), sc.Faulty)
		start := time.Now()
		switch kind {
		case kindTraditional:
			err = decode.Decode(c, st, sc, decode.Options{})
		case kindPPM:
			err = dec.Decode(st, sc)
		}
		elapsed := time.Since(start)
		if err != nil {
			return measurement{}, err
		}
		if i >= 0 && (best == 0 || elapsed < best) {
			best = elapsed
		}
	}
	return measurement{
		seconds: best.Seconds(),
		bytes:   st.TotalBytes(),
	}, nil
}

// measureEncode is measureDecode for the encoding special case.
func measureEncode(c codes.Code, kind decoderKind, cfg Config) (measurement, error) {
	return measureDecode(c, codes.EncodingScenario(c), kind, cfg)
}

// sdWorst draws a decodable SD worst case with the config seed.
func sdWorst(sd *codes.SD, z int, cfg Config) (codes.Scenario, error) {
	rng := rand.New(rand.NewSource(cfg.Seed + int64(sd.NumStrips()*1000+sd.M()*100+sd.S()*10+z)))
	return sd.WorstCaseScenario(rng, z)
}

// newTabWriter standardises the table output.
func newTabWriter(w io.Writer) *tabwriter.Writer {
	return tabwriter.NewWriter(w, 0, 4, 2, ' ', 0)
}

// gridN returns the n sweep, thinned under Quick.
func gridN(cfg Config) []int {
	if cfg.Quick {
		return []int{6, 11, 16, 21}
	}
	var ns []int
	for n := 6; n <= 24; n++ {
		ns = append(ns, n)
	}
	return ns
}

// gridMS returns the (m, s) grid, thinned under Quick.
func gridMS(cfg Config) [][2]int {
	if cfg.Quick {
		return [][2]int{{1, 1}, {2, 2}, {3, 3}}
	}
	var out [][2]int
	for m := 1; m <= 3; m++ {
		for s := 1; s <= 3; s++ {
			out = append(out, [2]int{m, s})
		}
	}
	return out
}

// capThreads bounds a thread sweep by the host's cores, keeping at
// least the paper's 1..4 range.
func capThreads(cfg Config) []int {
	max := runtime.NumCPU()
	if max > 8 {
		max = 8
	}
	if max < 4 {
		max = 4
	}
	var ts []int
	for t := 1; t <= max; t++ {
		ts = append(ts, t)
	}
	if cfg.Quick {
		ts = []int{1, 2, 4}
		if max >= 6 {
			ts = append(ts, 6)
		}
	}
	sort.Ints(ts)
	return ts
}

func fprintf(w io.Writer, format string, args ...any) {
	if _, err := fmt.Fprintf(w, format, args...); err != nil {
		panic(err) // writer failures are programmer errors in this harness
	}
}
