package harness

import (
	"context"
	"fmt"
	"io"
	"time"

	"ppm/internal/codes"
	"ppm/internal/decode"
	"ppm/internal/fault"
	"ppm/internal/stripe"
)

// runChaos is the fault-storm experiment (extension): for each of an
// SD, an LRC and an RS geometry, a small volume is encoded into an
// in-memory store, one disk is lost outright, and reads go through a
// fault-injecting wrapper firing a fixed storm — a transient read
// error recovered by retry, a latency spike, a permanently hung strip
// abandoned at its deadline and demoted, and a silent bit flip caught
// by the CRC-32C sector checksums. Every stripe must come back
// byte-identical to what was encoded. The schedule spec is printed per
// code, so a failing storm is replayable with `ppmfile -faults` or by
// re-running with the same seed.
func runChaos(w io.Writer, cfg Config) error {
	const numStripes = 6

	sd, err := newSD(6, 4, 2, 1)
	if err != nil {
		return err
	}
	lrc, err := codes.NewLRC(6, 2, 2)
	if err != nil {
		return err
	}
	rs, err := codes.NewRS(6, 4, 2)
	if err != nil {
		return err
	}
	cases := []struct {
		name string
		code codes.Code
	}{
		{"SD(6,4,2,1)", sd},
		{"LRC(6,2,2)", lrc},
		{"RS(6,2)", rs},
	}

	stripeBytes := cfg.StripeBytes
	if stripeBytes > 1<<20 {
		stripeBytes = 1 << 20 // the storm exercises recovery, not bandwidth
	}

	tw := newTabWriter(w)
	fprintf(tw, "code\tstripes\tretries\tdemoted\tcorrupt_sectors\thealed\telapsed\tresult\n")
	for ci, cse := range cases {
		n := cse.code.NumStrips()
		st, err := stripe.ForCode(cse.code, stripeBytes)
		if err != nil {
			return err
		}
		stripBytes := cse.code.NumRows() * st.SectorSize()
		mem := fault.NewMemStore(n, stripBytes)

		// Encode the volume and record expected contents + checksums.
		expected := make([]*stripe.Stripe, numStripes)
		sums := make([][]uint32, numStripes)
		for idx := 0; idx < numStripes; idx++ {
			st.FillDataRandom(cfg.Seed+int64(100*ci+idx), codes.DataPositions(cse.code))
			if err := decode.Encode(cse.code, st, decode.Options{}); err != nil {
				return err
			}
			if err := fault.StoreStripe(mem, idx, st); err != nil {
				return err
			}
			expected[idx] = st.Clone()
			sums[idx] = fault.SectorChecksums(st)
		}

		// The storm: disk 0 is gone, and four healthy disks each take
		// one scheduled fault on distinct stripes (distinct so every
		// geometry stays within its erasure budget per stripe).
		const lost = 0
		spec := fmt.Sprintf("seed=%d,read@1.%dx2,lat@2.%d/2ms,hang@3.%dx-1/2s,flip@4.%d",
			cfg.Seed+int64(ci), 1+lost, 2+lost, 3+lost, 4+lost)
		mem.Lose(lost)
		sched, err := fault.ParseSpec(spec)
		if err != nil {
			return err
		}
		fprintf(tw, "# %s storm (lost disk %d): %s\n", cse.name, lost, spec)

		h := &fault.Healer{
			Code:  cse.code,
			Store: fault.NewFaultyStore(mem, sched),
			Sums:  sums,
			Policy: fault.Policy{
				MaxAttempts: 4,
				BaseDelay:   time.Millisecond,
				MaxDelay:    20 * time.Millisecond,
				OpTimeout:   150 * time.Millisecond,
				Seed:        cfg.Seed,
			},
		}
		start := time.Now()
		for idx := 0; idx < numStripes; idx++ {
			if err := h.ReadStripe(context.Background(), idx, st); err != nil {
				return fmt.Errorf("%s stripe %d: %w", cse.name, idx, err)
			}
			if !st.Equal(expected[idx]) {
				return fmt.Errorf("%s stripe %d: recovered bytes differ from encoded bytes", cse.name, idx)
			}
		}
		elapsed := time.Since(start)

		if h.Stats.Retries == 0 {
			return fmt.Errorf("%s: storm fired no retries; schedule %s did not exercise the retry path", cse.name, spec)
		}
		if h.Stats.DemotedStrips == 0 {
			return fmt.Errorf("%s: no strip was demoted; the hung strip was not abandoned", cse.name)
		}
		if h.Stats.CorruptSectors == 0 {
			return fmt.Errorf("%s: checksums caught no corruption; the bit flip went unnoticed", cse.name)
		}
		fprintf(tw, "%s\t%d\t%d\t%d\t%d\t%d\t%s\t%s\n",
			cse.name, h.Stats.Stripes, h.Stats.Retries, h.Stats.DemotedStrips,
			h.Stats.CorruptSectors, h.Stats.Healed, elapsed.Round(time.Millisecond),
			"recovered byte-identical")
	}
	return tw.Flush()
}
