package harness

import (
	"io"
	"math"
)

// runHeadline reproduces the paper's aggregate claims over the Figure 8
// grid:
//   - "PPM improves the decoding speed by 61.09% on average (8.22% to
//     210.81%)" at T = 4;
//   - "even using two threads ... 46.29% on average (8.45% to 178.38%)".
func runHeadline(w io.Writer, cfg Config) error {
	for _, t := range []int{4, 2} {
		tcfg := cfg
		tcfg.Threads = t
		min, max, sum, count := math.Inf(1), math.Inf(-1), 0.0, 0
		pmin, pmax, psum := math.Inf(1), math.Inf(-1), 0.0
		for _, ms := range gridMS(cfg) {
			m, s := ms[0], ms[1]
			for _, n := range gridN(cfg) {
				if m >= n {
					continue
				}
				sd, err := newSD(n, 16, m, s)
				if err != nil {
					return err
				}
				sc, err := sdWorst(sd, 1, tcfg)
				if err != nil {
					return err
				}
				trad, err := measureDecode(sd, sc, kindTraditional, tcfg)
				if err != nil {
					return err
				}
				ppm, err := measureDecode(sd, sc, kindPPM, tcfg)
				if err != nil {
					return err
				}
				imp := improvement(trad, ppm)
				sum += imp
				count++
				min = math.Min(min, imp)
				max = math.Max(max, imp)
				pred, err := predictedImprovement(sd, sc)
				if err != nil {
					return err
				}
				psum += pred
				pmin = math.Min(pmin, pred)
				pmax = math.Max(pmax, pred)
			}
		}
		fprintf(w, "T=%d: measured improvement avg %.2f%% range [%.2f%%, %.2f%%] over %d configs\n",
			t, 100*sum/float64(count), 100*min, 100*max, count)
		fprintf(w, "      serial cost-model floor (C1/C4-1) avg %.2f%% range [%.2f%%, %.2f%%]\n",
			100*psum/float64(count), 100*pmin, 100*pmax)
	}
	fprintf(w, "paper: T=4 avg 61.09%% range [8.22%%, 210.81%%]; T=2 avg 46.29%% range [8.45%%, 178.38%%]\n")
	AnalyticSummary(w)
	return nil
}
