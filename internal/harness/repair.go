package harness

import (
	"fmt"
	"io"
	"time"

	"ppm/internal/codes"
	"ppm/internal/core"
	"ppm/internal/repair"
	"ppm/internal/stripe"
)

// runRepair contrasts minimal-read repair against full-stripe decode
// (extension): for a single failure per code, the survivor sectors a
// repair plan actually reads versus the whole surviving stripe, and
// the wall-clock of the partial plan versus the full decoder. A second
// table times the delta parity update (read-modify-write of one data
// strip) against a full re-encode — the small-write path. Every timed
// repair is verified byte-identical against the encoded original
// before its number is reported.
func runRepair(w io.Writer, cfg Config) error {
	lrc, err := codes.NewLRC(12, 2, 2)
	if err != nil {
		return err
	}
	rs, err := codes.NewRS(10, 1, 4)
	if err != nil {
		return err
	}
	sd, err := newSD(8, 4, 2, 2)
	if err != nil {
		return err
	}
	cases := []struct {
		name   string
		code   codes.Code
		faulty []int
	}{
		{"LRC(12,2,2) data", lrc, []int{3}},
		{"LRC(12,2,2) gparity", lrc, []int{14}},
		{"RS(10,6)", rs, []int{0}},
		{"SD(8,4,2,2) sector", sd, []int{5}},
	}

	tw := newTabWriter(w)
	fprintf(tw, "code\tread\tof\tfraction\tmult_xors\tpartial\tfull\tspeedup\n")
	for _, cse := range cases {
		c := cse.code
		sectorSize := cfg.StripeBytes / codes.TotalSectors(c)
		sectorSize -= sectorSize % 4
		if sectorSize < 4 {
			sectorSize = 4
		}
		sc, err := codes.NewScenario(c, cse.faulty)
		if err != nil {
			return err
		}
		plan, err := repair.NewPlanner(c).Plan(sc, cse.faulty)
		if err != nil {
			return err
		}
		dec := core.NewDecoder(c, core.WithThreads(cfg.Threads))
		full, err := dec.Plan(sc)
		if err != nil {
			return err
		}

		st, err := stripe.New(c.NumStrips(), c.NumRows(), sectorSize)
		if err != nil {
			return err
		}
		st.FillDataRandom(cfg.Seed, codes.DataPositions(c))
		if err := dec.Encode(st); err != nil {
			return err
		}
		want := st.Clone()

		partialNs, err := repairTime(cfg, func(i int64) error {
			st.Scribble(i, sc.Faulty)
			return plan.Execute(st, nil)
		})
		if err != nil {
			return err
		}
		if !st.Equal(want) {
			return fmt.Errorf("repair %s: output differs from the encoded original", cse.name)
		}
		fullNs, err := repairTime(cfg, func(i int64) error {
			st.Scribble(i, sc.Faulty)
			return dec.DecodeWithPlan(full, st)
		})
		if err != nil {
			return err
		}
		fprintf(tw, "%s\t%d\t%d\t%.0f%%\t%d\t%v\t%v\t%.2fx\n",
			cse.name, plan.Cost.ReadSectors, plan.Cost.FullReadSectors,
			100*plan.Cost.ReadFraction(), plan.Cost.MultXORs,
			time.Duration(partialNs), time.Duration(fullNs), fullNs/partialNs)
	}
	if err := tw.Flush(); err != nil {
		return err
	}

	// Delta parity update vs full re-encode on the LRC instance.
	sectorSize := cfg.StripeBytes / codes.TotalSectors(lrc)
	sectorSize -= sectorSize % 4
	if sectorSize < 4 {
		sectorSize = 4
	}
	upd, err := core.NewUpdater(lrc)
	if err != nil {
		return err
	}
	dec := core.NewDecoder(lrc)
	st, err := stripe.New(lrc.NumStrips(), lrc.NumRows(), sectorSize)
	if err != nil {
		return err
	}
	st.FillDataRandom(cfg.Seed, codes.DataPositions(lrc))
	if err := dec.Encode(st); err != nil {
		return err
	}
	newContent := make([]byte, sectorSize)
	for i := range newContent {
		newContent[i] = byte(i * 131)
	}
	const dataIdx = 3
	deltaNs, err := repairTime(cfg, func(int64) error {
		return upd.Update(st, dataIdx, newContent, nil)
	})
	if err != nil {
		return err
	}
	reencNs, err := repairTime(cfg, func(int64) error {
		copy(st.Sector(dataIdx), newContent)
		return dec.Encode(st)
	})
	if err != nil {
		return err
	}
	tw = newTabWriter(w)
	fprintf(tw, "small write\tstrip\tdelta\treencode\tspeedup\n")
	fprintf(tw, "LRC(12,2,2)\t%d B\t%v\t%v\t%.2fx\n",
		sectorSize, time.Duration(deltaNs), time.Duration(reencNs), reencNs/deltaNs)
	return tw.Flush()
}

// repairTime runs fn cfg.Iterations+1 times (first run warms caches,
// untimed) and returns the best nanoseconds — the same robust minimum
// estimator the other experiments use.
func repairTime(cfg Config, fn func(i int64) error) (float64, error) {
	iters := cfg.Iterations
	if iters < 1 {
		iters = 1
	}
	best := 0.0
	for i := -1; i < iters; i++ {
		start := time.Now()
		err := fn(cfg.Seed + int64(i))
		ns := float64(time.Since(start).Nanoseconds())
		if err != nil {
			return 0, err
		}
		if i >= 0 && (best == 0 || ns < best) {
			best = ns
		}
	}
	return best, nil
}
