package harness

import (
	"io"
	"runtime"

	"ppm/internal/codes"
	"ppm/internal/core"
	"ppm/internal/gf"
)

// runFig7 regenerates Figure 7: improvement ratio of PPM decode over
// the traditional decode as the thread count T varies, across n and
// (m, s) (r = 16, z = 1, stripe per config).
func runFig7(w io.Writer, cfg Config) error {
	tw := newTabWriter(w)
	fprintf(tw, "m\ts\tn\tT\timprovement\n")
	for _, ms := range gridMS(cfg) {
		m, s := ms[0], ms[1]
		for _, n := range gridN(cfg) {
			if m >= n {
				continue
			}
			sd, err := newSD(n, 16, m, s)
			if err != nil {
				return err
			}
			sc, err := sdWorst(sd, 1, cfg)
			if err != nil {
				return err
			}
			trad, err := measureDecode(sd, sc, kindTraditional, cfg)
			if err != nil {
				return err
			}
			for _, t := range capThreads(cfg) {
				tcfg := cfg
				tcfg.Threads = t
				ppm, err := measureDecode(sd, sc, kindPPM, tcfg)
				if err != nil {
					return err
				}
				fprintf(tw, "%d\t%d\t%d\t%d\t%.4f\n", m, s, n, t, improvement(trad, ppm))
			}
		}
	}
	return tw.Flush()
}

// runFig8 regenerates Figure 8: decode speed of SD (traditional),
// opt-SD (PPM, T=4) and the RS reference with m+1 parities at
// w = 8/16/32, as n sweeps (r = 16, z = 1).
func runFig8(w io.Writer, cfg Config) error {
	tw := newTabWriter(w)
	fprintf(tw, "m\ts\tn\tSD_MBps\toptSD_MBps\timprovement\tpredicted\tRS8_MBps\tRS16_MBps\tRS32_MBps\n")
	for _, ms := range gridMS(cfg) {
		m, s := ms[0], ms[1]
		for _, n := range gridN(cfg) {
			if m+1 >= n {
				continue
			}
			sd, err := newSD(n, 16, m, s)
			if err != nil {
				return err
			}
			sc, err := sdWorst(sd, 1, cfg)
			if err != nil {
				return err
			}
			trad, err := measureDecode(sd, sc, kindTraditional, cfg)
			if err != nil {
				return err
			}
			ppm, err := measureDecode(sd, sc, kindPPM, cfg)
			if err != nil {
				return err
			}
			pred, err := predictedImprovement(sd, sc)
			if err != nil {
				return err
			}

			rsSpeed := [3]float64{}
			for i, field := range []gf.Field{gf.GF8, gf.GF16, gf.GF32} {
				// "all results of RS code shown in the figure are with m+1".
				rsm, err := rsReference(n, 16, m+1, field, cfg)
				if err != nil {
					return err
				}
				rsSpeed[i] = rsm
			}
			fprintf(tw, "%d\t%d\t%d\t%.1f\t%.1f\t%.4f\t%.4f\t%.1f\t%.1f\t%.1f\n",
				m, s, n, trad.throughputMBps(), ppm.throughputMBps(), improvement(trad, ppm), pred,
				rsSpeed[0], rsSpeed[1], rsSpeed[2])
		}
	}
	return tw.Flush()
}

// rsReference measures the traditional decode speed of RS(n, n-m) in
// the given field for m failed disks.
func rsReference(n, r, m int, field gf.Field, cfg Config) (float64, error) {
	rs, err := codes.NewRSInField(n, r, m, field)
	if err != nil {
		return 0, err
	}
	sc, err := rsWorst(rs, cfg)
	if err != nil {
		return 0, err
	}
	meas, err := measureDecode(rs, sc, kindTraditional, cfg)
	if err != nil {
		return 0, err
	}
	return meas.throughputMBps(), nil
}

func rsWorst(rs *codes.RS, cfg Config) (codes.Scenario, error) {
	rng := newRNG(cfg.Seed + int64(rs.NumStrips()))
	return rs.WorstCaseScenario(rng)
}

// runFig9 regenerates Figure 9: improvement vs stripe size (n = 16,
// r = 16, T = 4, z = 1) for the (m, s) grid. The paper sweeps 2 MB to
// 128 MB; Quick mode scales to 512 KB..8 MB, which shows the same knee.
func runFig9(w io.Writer, cfg Config) error {
	sizes := []int{2 << 20, 4 << 20, 8 << 20, 16 << 20, 32 << 20, 64 << 20, 128 << 20}
	if cfg.Quick {
		sizes = []int{512 << 10, 1 << 20, 2 << 20, 4 << 20, 8 << 20}
	}
	tw := newTabWriter(w)
	fprintf(tw, "m\ts\tstripe_bytes\timprovement\n")
	for _, ms := range gridMS(cfg) {
		m, s := ms[0], ms[1]
		sd, err := newSD(16, 16, m, s)
		if err != nil {
			return err
		}
		sc, err := sdWorst(sd, 1, cfg)
		if err != nil {
			return err
		}
		for _, size := range sizes {
			scfg := cfg
			scfg.StripeBytes = size
			trad, err := measureDecode(sd, sc, kindTraditional, scfg)
			if err != nil {
				return err
			}
			ppm, err := measureDecode(sd, sc, kindPPM, scfg)
			if err != nil {
				return err
			}
			fprintf(tw, "%d\t%d\t%d\t%.4f\n", m, s, size, improvement(trad, ppm))
		}
	}
	return tw.Flush()
}

// runFig10 regenerates Figure 10 with the documented substitution: the
// paper's three CPUs (4, 6 and 8 cores) become GOMAXPROCS caps on this
// host, exercising the same "improvement is CPU-independent" claim.
func runFig10(w io.Writer, cfg Config) error {
	cores := []int{4, 6, 8}
	host := runtime.NumCPU()
	tw := newTabWriter(w)
	fprintf(tw, "cores\tm\ts\tn\timprovement\n")
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)
	for _, c := range cores {
		if c > host {
			fprintf(tw, "%d\t-\t-\t-\tskipped (host has %d cores)\n", c, host)
			continue
		}
		runtime.GOMAXPROCS(c)
		for _, ms := range gridMS(cfg) {
			m, s := ms[0], ms[1]
			for _, n := range gridN(cfg) {
				if m >= n {
					continue
				}
				sd, err := newSD(n, 16, m, s)
				if err != nil {
					return err
				}
				sc, err := sdWorst(sd, 1, cfg)
				if err != nil {
					return err
				}
				trad, err := measureDecode(sd, sc, kindTraditional, cfg)
				if err != nil {
					return err
				}
				ppm, err := measureDecode(sd, sc, kindPPM, cfg)
				if err != nil {
					return err
				}
				fprintf(tw, "%d\t%d\t%d\t%d\t%.4f\n", c, m, s, n, improvement(trad, ppm))
			}
		}
	}
	return tw.Flush()
}

// predictedImprovement is the deterministic, host-independent part of
// the speedup: the serial cost reduction C1/C4 - 1 from the §III-B
// model. On a single-core host the measured improvement converges to
// this; on multi-core hosts the parallel phase adds the rest (ideally
// up to sum(c_i) - c_max of the group-decode time, §III-C).
func predictedImprovement(c codes.Code, sc codes.Scenario) (float64, error) {
	plan, err := core.BuildPlan(c, sc, core.StrategyAuto)
	if err != nil {
		return 0, err
	}
	if plan.Costs.Chosen == 0 {
		return 0, nil
	}
	return float64(plan.Costs.C1)/float64(plan.Costs.Chosen) - 1, nil
}
