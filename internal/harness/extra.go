package harness

import (
	"io"
	"time"

	"ppm/internal/codes"
	"ppm/internal/core"
	"ppm/internal/decode"
	"ppm/internal/kernel"
	"ppm/internal/stripe"
)

// runEncodeExp measures encoding speed (traditional vs PPM) across the
// (m, s) grid. The paper folds encoding into its decode measurements
// ("the encoding process ... is a special case of the decoding
// process"); this experiment breaks it out, since encoding is the
// steady-state cost of an erasure-coded system. For SD the encode
// partition has p = r - z_c groups (z_c = rows holding coding sectors).
func runEncodeExp(w io.Writer, cfg Config) error {
	tw := newTabWriter(w)
	fprintf(tw, "m\ts\tn\ttrad_MBps\tppm_MBps\timprovement\tpredicted\tp\n")
	for _, ms := range gridMS(cfg) {
		m, s := ms[0], ms[1]
		for _, n := range gridN(cfg) {
			if m >= n {
				continue
			}
			sd, err := newSD(n, 16, m, s)
			if err != nil {
				return err
			}
			sc := codes.EncodingScenario(sd)
			trad, err := measureDecode(sd, sc, kindTraditional, cfg)
			if err != nil {
				return err
			}
			ppm, err := measureDecode(sd, sc, kindPPM, cfg)
			if err != nil {
				return err
			}
			pred, err := predictedImprovement(sd, sc)
			if err != nil {
				return err
			}
			plan, err := core.BuildPlan(sd, sc, core.StrategyPPM)
			if err != nil {
				return err
			}
			fprintf(tw, "%d\t%d\t%d\t%.1f\t%.1f\t%.4f\t%.4f\t%d\n",
				m, s, n, trad.throughputMBps(), ppm.throughputMBps(),
				improvement(trad, ppm), pred, plan.Partition.P())
		}
	}
	return tw.Flush()
}

// runAblation isolates the two PPM mechanisms (§III-B cost reduction
// vs §III-C parallelism) against the related-work block-level baseline:
//
//	trad       — whole matrix, Normal sequence, serial (C1)
//	block-par  — whole matrix, byte ranges split over T workers (C1)
//	ppm-T1     — partition + sequence optimisation, one worker (C4)
//	ppm        — partition + sequence optimisation, T workers (C4)
//
// On a single-core host block-par ≈ trad and ppm ≈ ppm-T1; on a
// multi-core host the gaps display the two mechanisms separately.
func runAblation(w io.Writer, cfg Config) error {
	tw := newTabWriter(w)
	fprintf(tw, "m\ts\tn\tvariant\tMBps\tmult_XORs\n")
	for _, ms := range gridMS(cfg) {
		m, s := ms[0], ms[1]
		for _, n := range gridN(cfg) {
			if m >= n {
				continue
			}
			sd, err := newSD(n, 16, m, s)
			if err != nil {
				return err
			}
			sc, err := sdWorst(sd, 1, cfg)
			if err != nil {
				return err
			}
			variants := []struct {
				name string
				run  func(st *stripe.Stripe, stats *kernel.Stats) error
			}{
				{"trad", func(st *stripe.Stripe, stats *kernel.Stats) error {
					return decode.Decode(sd, st, sc, decode.Options{Stats: stats})
				}},
				{"block-par", func(st *stripe.Stripe, stats *kernel.Stats) error {
					return decode.DecodeBlockParallel(sd, st, sc, threadsOrDefault(cfg), decode.Options{Stats: stats})
				}},
				{"ppm-T1", func(st *stripe.Stripe, stats *kernel.Stats) error {
					return core.NewDecoder(sd, core.WithThreads(1), core.WithStats(stats)).Decode(st, sc)
				}},
				{"ppm", func(st *stripe.Stripe, stats *kernel.Stats) error {
					return core.NewDecoder(sd, core.WithThreads(cfg.Threads), core.WithStats(stats)).Decode(st, sc)
				}},
				{"ppm-hybrid", func(st *stripe.Stripe, stats *kernel.Stats) error {
					return core.NewDecoder(sd, core.WithThreads(cfg.Threads), core.WithStats(stats), core.WithHybrid(true)).Decode(st, sc)
				}},
			}
			for _, v := range variants {
				meas, ops, err := measureVariant(sd, sc, cfg, v.run)
				if err != nil {
					return err
				}
				fprintf(tw, "%d\t%d\t%d\t%s\t%.1f\t%d\n", m, s, n, v.name, meas.throughputMBps(), ops)
			}
		}
	}
	return tw.Flush()
}

func threadsOrDefault(cfg Config) int {
	if cfg.Threads > 0 {
		return cfg.Threads
	}
	return core.DefaultThreads()
}

// measureVariant times an arbitrary decode variant the same way
// measureDecode does, and reports the per-decode operation count.
func measureVariant(c codes.Code, sc codes.Scenario, cfg Config, run func(*stripe.Stripe, *kernel.Stats) error) (measurement, int64, error) {
	st, err := stripe.ForCode(c, cfg.StripeBytes)
	if err != nil {
		return measurement{}, 0, err
	}
	st.FillDataRandom(cfg.Seed, codes.DataPositions(c))
	if err := decode.Encode(c, st, decode.Options{}); err != nil {
		return measurement{}, 0, err
	}
	iters := cfg.Iterations
	if iters < 1 {
		iters = 1
	}
	var best time.Duration
	var ops int64
	for i := -1; i < iters; i++ {
		st.Scribble(cfg.Seed+int64(i), sc.Faulty)
		var stats kernel.Stats
		start := time.Now()
		if err := run(st, &stats); err != nil {
			return measurement{}, 0, err
		}
		elapsed := time.Since(start)
		if i >= 0 && (best == 0 || elapsed < best) {
			best = elapsed
		}
		ops = stats.MultXORs()
	}
	return measurement{seconds: best.Seconds(), bytes: st.TotalBytes()}, ops, nil
}
