package harness

import (
	"fmt"
	"io"

	"ppm/internal/codes"
	"ppm/internal/cost"
)

// runFig4 regenerates Figure 4: for each (m, s) panel, the exact cost
// ratios C2/C1, C3/C1 and C4/C1 as n sweeps 6..24 (r = 16, z = 1).
func runFig4(w io.Writer, cfg Config) error {
	tw := newTabWriter(w)
	fprintf(tw, "m\ts\tn\tC2/C1\tC3/C1\tC4/C1\n")
	for _, ms := range gridMS(cfg) {
		m, s := ms[0], ms[1]
		for _, n := range gridN(cfg) {
			if m >= n {
				continue
			}
			pts, err := cost.SweepN(n, n, 1, 16, m, s, 1, cfg.Seed)
			if err != nil {
				return err
			}
			for _, p := range pts {
				fprintf(tw, "%d\t%d\t%d\t%.4f\t%.4f\t%.4f\n", m, s, p.N, p.R2, p.R3, p.R4)
			}
		}
	}
	return tw.Flush()
}

// runFig5 regenerates Figure 5: C4/C1 for z = 1..3 (s = 3, r = 16),
// panels m = 1..3.
func runFig5(w io.Writer, cfg Config) error {
	tw := newTabWriter(w)
	fprintf(tw, "m\tz\tn\tC4/C1\n")
	for m := 1; m <= 3; m++ {
		for z := 1; z <= 3; z++ {
			for _, n := range gridN(cfg) {
				if m >= n {
					continue
				}
				pts, err := cost.SweepN(n, n, 1, 16, m, 3, z, cfg.Seed)
				if err != nil {
					return err
				}
				for _, p := range pts {
					fprintf(tw, "%d\t%d\t%d\t%.4f\n", m, z, p.N, p.R4)
				}
			}
		}
	}
	return tw.Flush()
}

// runFig6 regenerates Figure 6: C4/C1 as r sweeps 4..24 (m = 2, s = 3,
// z = 1), one row per (r, n).
func runFig6(w io.Writer, cfg Config) error {
	rs := []int{4, 8, 12, 16, 20, 24}
	if cfg.Quick {
		rs = []int{4, 12, 24}
	}
	tw := newTabWriter(w)
	fprintf(tw, "r\tn\tC4/C1\n")
	for _, r := range rs {
		for _, n := range gridN(cfg) {
			pts, err := cost.SweepN(n, n, 1, r, 2, 3, 1, cfg.Seed)
			if err != nil {
				return err
			}
			for _, p := range pts {
				fprintf(tw, "%d\t%d\t%.4f\n", r, p.N, p.R4)
			}
		}
	}
	return tw.Flush()
}

// AnalyticSummary prints the §III-B aggregate the paper quotes (average
// C4/C1 = 85.78%, range 47.97%..98.06%) from the closed forms.
func AnalyticSummary(w io.Writer) {
	sum, count := 0.0, 0
	lo, hi := 2.0, 0.0
	for m := 1; m <= 3; m++ {
		for s := 1; s <= 3; s++ {
			for n := 6; n <= 24; n++ {
				c := cost.ClosedForm(n, 16, m, s, 1)
				_, _, r4 := c.Ratio4()
				sum += r4
				count++
				if r4 < lo {
					lo = r4
				}
				if r4 > hi {
					hi = r4
				}
			}
		}
	}
	fprintf(w, "closed-form C4/C1 over the Figure 4 grid: avg %.2f%% (paper 85.78%%), min %.2f%% (paper 47.97%%), max %.2f%% (paper 98.06%%)\n",
		100*sum/float64(count), 100*lo, 100*hi)
}

// newSD wraps codes.NewSD with a friendlier error for sweep loops.
func newSD(n, r, m, s int) (*codes.SD, error) {
	sd, err := codes.NewSD(n, r, m, s)
	if err != nil {
		return nil, fmt.Errorf("harness: SD n=%d r=%d m=%d s=%d: %w", n, r, m, s, err)
	}
	return sd, nil
}
