package harness

import (
	"fmt"
	"io"
	"time"

	"ppm/internal/codes"
	"ppm/internal/pipeline"
	"ppm/internal/stripe"
)

// runPipelineExp measures the multi-stripe batch path (extension): a
// whole-disk rebuild decodes many identically-failed stripes, so the
// experiment compares the fixed serial per-stripe loop against the
// streaming pipeline's Batch entry point at increasing in-flight
// depths, for encode and for a two-disk rebuild. One plan serves every
// stripe in both paths; the pipeline additionally shards stripes across
// the worker pool and keeps Depth of them in flight. On a single-core
// host the in-memory batch is compute-bound and the depths tie — the
// pipeline's I/O-overlap gains are measured by cmd/benchpipeline
// against a latency-modelled store.
func runPipelineExp(w io.Writer, cfg Config) error {
	sd, err := codes.NewSD(8, 16, 2, 2)
	if err != nil {
		return err
	}
	numStripes := 32
	if cfg.Quick {
		numStripes = 12
	}
	// Size stripes so the batch roughly totals the configured stripe
	// bytes: the figure experiments' working-set scale, split into a
	// rebuild-shaped batch.
	st0, err := stripe.ForCode(sd, cfg.StripeBytes/numStripes)
	if err != nil {
		return err
	}
	sectorSize := st0.SectorSize()

	batch := make([]*stripe.Stripe, numStripes)
	for i := range batch {
		st, err := stripe.New(sd.NumStrips(), sd.NumRows(), sectorSize)
		if err != nil {
			return err
		}
		st.FillDataRandom(cfg.Seed+int64(i), codes.DataPositions(sd))
		batch[i] = st
	}

	var faulty []int
	for row := 0; row < sd.NumRows(); row++ {
		for _, d := range []int{1, 4} {
			faulty = append(faulty, row*sd.NumStrips()+d)
		}
	}
	rebuild, err := codes.NewScenario(sd, faulty)
	if err != nil {
		return err
	}

	totalBytes := numStripes * batch[0].TotalBytes()
	fprintf(w, "Batch pipeline vs serial loop: %s, %d stripes x %d KiB (%s)\n",
		sd.Name(), numStripes, batch[0].TotalBytes()>>10, "encode + 2-disk rebuild")
	tw := newTabWriter(w)
	fprintf(tw, "op\tpath\tstripes/s\tMB/s\n")

	type variant struct {
		name string
		run  func(sc codes.Scenario) error
	}
	variants := []variant{
		{"serial", func(sc codes.Scenario) error {
			_, err := pipeline.Serial(sd, sc, 0, pipeline.Config{}, pipeline.SliceSource(batch), pipeline.NopSink{})
			return err
		}},
	}
	for _, depth := range []int{1, 2, 4, 8} {
		depth := depth
		variants = append(variants, variant{fmt.Sprintf("pipeline d=%d", depth), func(sc codes.Scenario) error {
			return pipeline.Batch(sd, sc, batch, pipeline.Config{Depth: depth})
		}})
	}

	ops := []struct {
		name string
		sc   codes.Scenario
		prep func(i int)
	}{
		{"encode", codes.EncodingScenario(sd), nil},
		{"rebuild", rebuild, func(i int) {
			for s, st := range batch {
				st.Scribble(cfg.Seed+int64(1000*i+s), rebuild.Faulty)
			}
		}},
	}
	iters := cfg.Iterations
	if iters < 1 {
		iters = 1
	}
	for _, op := range ops {
		for _, v := range variants {
			best := time.Duration(0)
			for i := -1; i < iters; i++ { // one warm-up pass
				if op.prep != nil {
					op.prep(i)
				}
				start := time.Now()
				if err := v.run(op.sc); err != nil {
					return fmt.Errorf("%s/%s: %w", op.name, v.name, err)
				}
				if elapsed := time.Since(start); i >= 0 && (best == 0 || elapsed < best) {
					best = elapsed
				}
			}
			fprintf(tw, "%s\t%s\t%.1f\t%.1f\n", op.name, v.name,
				float64(numStripes)/best.Seconds(), float64(totalBytes)/1e6/best.Seconds())
		}
	}
	return tw.Flush()
}
