package harness

import (
	"io"

	"ppm/internal/codes"
	"ppm/internal/workload"
)

// runDegraded simulates degraded-read traffic (extension): one data
// block is transiently unavailable and a uniform read trace hits the
// volume; the table contrasts LRC's local repair against RS's k-wide
// repair and an SD stripe-row repair, in both reconstruction width
// (mult_XORs per degraded read) and latency percentiles. This is the
// §I motivation ("transient data unavailable occupy 90% of data center
// failure events") made measurable.
func runDegraded(w io.Writer, cfg Config) error {
	const (
		numStripes = 8
		reads      = 400
	)
	type volCase struct {
		name string
		code codes.Code
		disk int
	}
	lrc, err := codes.NewLRC(12, 3, 2)
	if err != nil {
		return err
	}
	rs, err := codes.NewRS(17, 1, 5)
	if err != nil {
		return err
	}
	sd, err := newSD(8, 16, 2, 2)
	if err != nil {
		return err
	}
	cases := []volCase{
		{"LRC(12,3,2)", lrc, 2},
		{"RS(17,12)", rs, 2},
		{"SD(8,16,2,2)", sd, 2},
	}

	sectorSize := cfg.StripeBytes / 256
	sectorSize -= sectorSize % 4
	if sectorSize < 4 {
		sectorSize = 4
	}

	tw := newTabWriter(w)
	fprintf(tw, "code\ttrace\treads\tdegraded\tops_per_read\thealthy_p50\tdegraded_p50\tdegraded_p99\n")
	for _, cse := range cases {
		total := codes.TotalSectors(cse.code)
		traces := []struct {
			name  string
			reads []workload.Read
		}{
			{"uniform", workload.UniformTrace(numStripes, total, reads, cfg.Seed+7)},
			{"zipf", workload.ZipfTrace(numStripes, total, reads, cfg.Seed+11)},
		}
		for _, tr := range traces {
			v, err := workload.NewVolume(cse.code, numStripes, sectorSize, []int{cse.disk}, cfg.Threads, cfg.Seed)
			if err != nil {
				return err
			}
			res, err := v.Serve(tr.reads)
			if err != nil {
				return err
			}
			fprintf(tw, "%s\t%s\t%d\t%d\t%.1f\t%v\t%v\t%v\n",
				cse.name, tr.name, res.Reads, res.Degraded, res.Repair.MultXORsPerOp,
				res.Healthy.P50, res.Repair.P50, res.Repair.P99)
		}
	}
	return tw.Flush()
}
