package harness

import (
	"io"
	"math/rand"

	"ppm/internal/codes"
)

func newRNG(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// lrcSweep is the Figure 11 storage-cost sweep: (k, l, g) tuples with
// l = 4 local groups and g = 2 global parities, chosen so n/k lands on
// the paper's 1.1..1.7 range (see EXPERIMENTS.md for the mapping).
var lrcSweep = []struct{ k, l, g int }{
	{60, 4, 2}, // cost 1.10
	{30, 4, 2}, // cost 1.20
	{20, 4, 2}, // cost 1.30
	{12, 4, 2}, // cost 1.50
	{9, 4, 2},  // cost 1.67
}

// runFig11 regenerates Figure 11: PPM improvement for LRC decodes as
// the storage cost varies, for the fixed-stripe-size panel (every code
// shares cfg.StripeBytes) and the fixed-strip-size panel (every block
// has the same size, so bigger codes process bigger stripes).
func runFig11(w io.Writer, cfg Config) error {
	tw := newTabWriter(w)
	fprintf(tw, "panel\tk\tl\tg\tstorage_cost\timprovement\n")

	for _, cse := range lrcSweep {
		lrc, err := codes.NewLRC(cse.k, cse.l, cse.g)
		if err != nil {
			return err
		}
		sc, err := lrc.WorstCaseScenario(newRNG(cfg.Seed + int64(cse.k)))
		if err != nil {
			return err
		}

		// Panel 1: fixed stripe size.
		trad, err := measureDecode(lrc, sc, kindTraditional, cfg)
		if err != nil {
			return err
		}
		ppm, err := measureDecode(lrc, sc, kindPPM, cfg)
		if err != nil {
			return err
		}
		fprintf(tw, "stripe\t%d\t%d\t%d\t%.2f\t%.4f\n",
			cse.k, cse.l, cse.g, lrc.StorageCost(), improvement(trad, ppm))

		// Panel 2: fixed strip (block) size. The paper fixes 64 MB
		// blocks; we scale so the largest code stays within the config
		// budget: block = StripeBytes / max_n.
		block := cfg.StripeBytes / (lrcSweep[0].k + lrcSweep[0].l + lrcSweep[0].g)
		scfg := cfg
		scfg.StripeBytes = block * (cse.k + cse.l + cse.g)
		trad, err = measureDecode(lrc, sc, kindTraditional, scfg)
		if err != nil {
			return err
		}
		ppm, err = measureDecode(lrc, sc, kindPPM, scfg)
		if err != nil {
			return err
		}
		fprintf(tw, "strip\t%d\t%d\t%d\t%.2f\t%.4f\n",
			cse.k, cse.l, cse.g, lrc.StorageCost(), improvement(trad, ppm))
	}
	return tw.Flush()
}
