package ppm

import (
	"math/rand"
	"testing"
)

// TestSymmetricCodesDecodeUnderPPM: PPM is correct on symmetric-parity
// codes too (it degenerates to the traditional pipeline), even though
// the paper targets asymmetric codes for the gains.
func TestSymmetricCodesDecodeUnderPPM(t *testing.T) {
	rng := rand.New(rand.NewSource(601))

	eo, err := NewEVENODD(5)
	if err != nil {
		t.Fatal(err)
	}
	rdp, err := NewRDP(5)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		code Code
		gen  func() (Scenario, error)
	}{
		{eo, func() (Scenario, error) { return eo.WorstCaseScenario(rng) }},
		{rdp, func() (Scenario, error) { return rdp.WorstCaseScenario(rng) }},
	} {
		tc := tc
		t.Run(tc.code.Name(), func(t *testing.T) {
			st, err := StripeForCode(tc.code, 64<<10)
			if err != nil {
				t.Fatal(err)
			}
			st.FillDataRandom(1, DataPositions(tc.code))
			if err := TraditionalEncode(tc.code, st, nil); err != nil {
				t.Fatal(err)
			}
			want := st.Clone()
			sc, err := tc.gen()
			if err != nil {
				t.Fatal(err)
			}
			st.Erase(sc.Faulty)
			if err := NewDecoder(tc.code, WithThreads(4)).Decode(st, sc); err != nil {
				t.Fatal(err)
			}
			if !st.Equal(want) {
				t.Fatal("recovery mismatch")
			}
		})
	}
}

// TestPartitionStructureByCodeFamily pins how much parallelism PPM's
// partition extracts from a double-data-disk failure across code
// families — the structural spectrum behind the paper's motivation:
//
//   - EVENODD: the adjuster diagonal entangles every diagonal equation
//     with every failure → p = 0 (§III-C case 1, fully serial);
//   - RDP: exactly one diagonal misses a failed cell on the imaginary
//     row → p = 1 (case 2, still no parallelism);
//   - RS: every stripe row is an independent codeword → p = r
//     (case 3.1, the equation-oriented parallelism of related work);
//   - SD worst case: mixed — p = r - z groups plus a sector-row
//     remainder (case 3.2, the case PPM is designed for).
func TestPartitionStructureByCodeFamily(t *testing.T) {
	twoDisks := func(c Code) Scenario {
		var faulty []int
		for i := 0; i < c.NumRows(); i++ {
			faulty = append(faulty, i*c.NumStrips(), i*c.NumStrips()+1)
		}
		sc, err := NewScenario(c, faulty)
		if err != nil {
			t.Fatal(err)
		}
		return sc
	}

	eo, err := NewEVENODD(5)
	if err != nil {
		t.Fatal(err)
	}
	rdp, err := NewRDP(5)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := NewRS(8, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		code     Code
		wantP    int
		wantCase int
	}{
		{eo, 0, 1},
		{rdp, 1, 2},
		{rs, 4, 31},
	} {
		plan, err := BuildPlan(tc.code, twoDisks(tc.code), StrategyPPM)
		if err != nil {
			t.Fatalf("%s: %v", tc.code.Name(), err)
		}
		if p := plan.Partition.P(); p != tc.wantP {
			t.Errorf("%s: p = %d, want %d", tc.code.Name(), p, tc.wantP)
		}
		if cse := plan.Partition.Case(); cse != tc.wantCase {
			t.Errorf("%s: case = %d, want %d", tc.code.Name(), cse, tc.wantCase)
		}
	}

	// The asymmetric SD worst case exposes both phases: p = r - z
	// groups plus a non-empty remainder.
	sd, err := NewSD(8, 8, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(602))
	sdsc, err := sd.WorstCaseScenario(rng, 1)
	if err != nil {
		t.Fatal(err)
	}
	sdPlan, err := BuildPlan(sd, sdsc, StrategyPPM)
	if err != nil {
		t.Fatal(err)
	}
	if p := sdPlan.Partition.P(); p != 7 { // r - z = 8 - 1
		t.Errorf("SD worst case p = %d, want 7", p)
	}
	if cse := sdPlan.Partition.Case(); cse != 32 {
		t.Errorf("SD worst case = %d, want 32", cse)
	}
}

// TestBlockParallelAPI: the related-work baseline recovers correctly
// through the public API and costs exactly C1.
func TestBlockParallelAPI(t *testing.T) {
	code, err := NewSD(8, 8, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	st, err := StripeForCode(code, 256<<10)
	if err != nil {
		t.Fatal(err)
	}
	st.FillDataRandom(1, DataPositions(code))
	if err := TraditionalEncode(code, st, nil); err != nil {
		t.Fatal(err)
	}
	want := st.Clone()
	rng := rand.New(rand.NewSource(603))
	sc, err := code.WorstCaseScenario(rng, 1)
	if err != nil {
		t.Fatal(err)
	}
	st.Erase(sc.Faulty)
	var stats Stats
	if err := BlockParallelDecode(code, st, sc, 4, &stats); err != nil {
		t.Fatal(err)
	}
	if !st.Equal(want) {
		t.Fatal("recovery mismatch")
	}
	plan, err := BuildPlan(code, sc, StrategyWholeNormal)
	if err != nil {
		t.Fatal(err)
	}
	if stats.MultXORs() != plan.Costs.C1 {
		t.Fatalf("block-parallel cost %d != C1 %d", stats.MultXORs(), plan.Costs.C1)
	}
}
