package ppm

// One benchmark per data figure of the paper (see DESIGN.md §3 for the
// full experiment index; cmd/ppmbench regenerates the actual series and
// EXPERIMENTS.md records paper-vs-measured). Benchmarks default to
// modest stripe sizes so the whole suite runs in CI; the shapes —
// opt-SD above SD, saturation at T = cores, LRC gains below SD gains —
// match the paper at every size above the Figure 9 knee.

import (
	"fmt"
	"math/rand"
	"runtime"
	"testing"
)

const benchStripeBytes = 2 << 20

// benchSetup builds an encoded stripe and a worst-case scenario.
func benchSetup(b *testing.B, code Code, sc Scenario, stripeBytes int) *Stripe {
	b.Helper()
	st, err := StripeForCode(code, stripeBytes)
	if err != nil {
		b.Fatal(err)
	}
	st.FillDataRandom(1, DataPositions(code))
	if err := TraditionalEncode(code, st, nil); err != nil {
		b.Fatal(err)
	}
	_ = sc
	return st
}

func benchDecode(b *testing.B, code Code, sc Scenario, dec func(*Stripe) error, stripeBytes int) {
	b.Helper()
	st := benchSetup(b, code, sc, stripeBytes)
	b.SetBytes(int64(st.TotalBytes()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		st.Scribble(int64(i), sc.Faulty)
		b.StartTimer()
		if err := dec(st); err != nil {
			b.Fatal(err)
		}
	}
}

func sdWorstCase(b *testing.B, n, r, m, s, z int) (*SD, Scenario) {
	b.Helper()
	sd, err := NewSD(n, r, m, s)
	if err != nil {
		b.Fatal(err)
	}
	sc, err := sd.WorstCaseScenario(rand.New(rand.NewSource(42)), z)
	if err != nil {
		b.Fatal(err)
	}
	return sd, sc
}

// BenchmarkFig4CostModel times the full §III-B cost analysis (log
// table, partition, whole-matrix inversion, all four C values) — the
// planning overhead PPM adds before touching any data.
func BenchmarkFig4CostModel(b *testing.B) {
	sd, sc := sdWorstCase(b, 16, 16, 2, 2, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := BuildPlan(sd, sc, StrategyAuto); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig7Threads regenerates the Figure 7 thread sweep for one
// representative configuration (n=16, r=16, m=2, s=2).
func BenchmarkFig7Threads(b *testing.B) {
	sd, sc := sdWorstCase(b, 16, 16, 2, 2, 1)
	for _, t := range []int{1, 2, 4, 8} {
		t := t
		b.Run(fmt.Sprintf("T=%d", t), func(b *testing.B) {
			dec := NewDecoder(sd, WithThreads(t))
			benchDecode(b, sd, sc, func(st *Stripe) error { return dec.Decode(st, sc) }, benchStripeBytes)
		})
	}
}

// BenchmarkFig8SpeedupN regenerates the Figure 8 comparison: SD decoded
// traditionally, opt-SD (PPM), and RS with m+1 parities, across n.
func BenchmarkFig8SpeedupN(b *testing.B) {
	for _, n := range []int{6, 11, 16, 21} {
		n := n
		sd, sc := sdWorstCase(b, n, 16, 2, 2, 1)
		b.Run(fmt.Sprintf("n=%d/SD-traditional", n), func(b *testing.B) {
			benchDecode(b, sd, sc, func(st *Stripe) error {
				return TraditionalDecode(sd, st, sc, nil)
			}, benchStripeBytes)
		})
		b.Run(fmt.Sprintf("n=%d/opt-SD-ppm", n), func(b *testing.B) {
			dec := NewDecoder(sd, WithThreads(4))
			benchDecode(b, sd, sc, func(st *Stripe) error { return dec.Decode(st, sc) }, benchStripeBytes)
		})
		b.Run(fmt.Sprintf("n=%d/RS-m+1", n), func(b *testing.B) {
			rs, err := NewRS(n, 16, 3)
			if err != nil {
				b.Fatal(err)
			}
			rsc, err := rs.WorstCaseScenario(rand.New(rand.NewSource(42)))
			if err != nil {
				b.Fatal(err)
			}
			benchDecode(b, rs, rsc, func(st *Stripe) error {
				return TraditionalDecode(rs, st, rsc, nil)
			}, benchStripeBytes)
		})
	}
}

// BenchmarkFig9StripeSize regenerates the Figure 9 stripe-size sweep
// (n=16, r=16, m=2, s=2, T=4).
func BenchmarkFig9StripeSize(b *testing.B) {
	sd, sc := sdWorstCase(b, 16, 16, 2, 2, 1)
	for _, size := range []int{256 << 10, 1 << 20, 4 << 20, 16 << 20} {
		size := size
		b.Run(fmt.Sprintf("stripe=%dKiB/traditional", size>>10), func(b *testing.B) {
			benchDecode(b, sd, sc, func(st *Stripe) error {
				return TraditionalDecode(sd, st, sc, nil)
			}, size)
		})
		b.Run(fmt.Sprintf("stripe=%dKiB/ppm", size>>10), func(b *testing.B) {
			dec := NewDecoder(sd, WithThreads(4))
			benchDecode(b, sd, sc, func(st *Stripe) error { return dec.Decode(st, sc) }, size)
		})
	}
}

// BenchmarkFig10Cores regenerates Figure 10's CPU substitution: the
// improvement is measured under different GOMAXPROCS caps.
func BenchmarkFig10Cores(b *testing.B) {
	sd, sc := sdWorstCase(b, 16, 16, 2, 2, 1)
	host := runtime.NumCPU()
	for _, cores := range []int{4, 6, 8} {
		cores := cores
		if cores > host {
			continue
		}
		b.Run(fmt.Sprintf("cores=%d/ppm", cores), func(b *testing.B) {
			prev := runtime.GOMAXPROCS(cores)
			defer runtime.GOMAXPROCS(prev)
			dec := NewDecoder(sd, WithThreads(4))
			benchDecode(b, sd, sc, func(st *Stripe) error { return dec.Decode(st, sc) }, benchStripeBytes)
		})
	}
}

// BenchmarkFig11LRC regenerates the Figure 11 LRC comparison for a
// middle-of-the-sweep storage cost.
func BenchmarkFig11LRC(b *testing.B) {
	lrc, err := NewLRC(20, 4, 2)
	if err != nil {
		b.Fatal(err)
	}
	sc, err := lrc.WorstCaseScenario(rand.New(rand.NewSource(42)))
	if err != nil {
		b.Fatal(err)
	}
	b.Run("traditional", func(b *testing.B) {
		benchDecode(b, lrc, sc, func(st *Stripe) error {
			return TraditionalDecode(lrc, st, sc, nil)
		}, benchStripeBytes)
	})
	b.Run("ppm", func(b *testing.B) {
		dec := NewDecoder(lrc, WithThreads(4))
		benchDecode(b, lrc, sc, func(st *Stripe) error { return dec.Decode(st, sc) }, benchStripeBytes)
	})
}

// BenchmarkEncode compares PPM encoding (parallel over the r - z rows
// without coding sectors) against the traditional encode.
func BenchmarkEncode(b *testing.B) {
	sd, err := NewSD(16, 16, 2, 2)
	if err != nil {
		b.Fatal(err)
	}
	sc := EncodingScenario(sd)
	b.Run("traditional", func(b *testing.B) {
		benchDecode(b, sd, sc, func(st *Stripe) error {
			return TraditionalEncode(sd, st, nil)
		}, benchStripeBytes)
	})
	b.Run("ppm", func(b *testing.B) {
		dec := NewDecoder(sd, WithThreads(4))
		benchDecode(b, sd, sc, func(st *Stripe) error { return dec.Encode(st) }, benchStripeBytes)
	})
}

// BenchmarkAblationSequences isolates the calculation-sequence choice
// (DESIGN.md's ablation): the same scenario decoded under all four
// strategies with one thread, so differences come from C1..C4 alone.
func BenchmarkAblationSequences(b *testing.B) {
	sd, sc := sdWorstCase(b, 16, 16, 2, 2, 1)
	for _, strat := range []struct {
		name string
		s    Strategy
	}{
		{"C1-whole-normal", StrategyWholeNormal},
		{"C2-whole-matrix-first", StrategyWholeMatrixFirst},
		{"C3-ppm-mf-rest", StrategyPPMC3},
		{"C4-ppm", StrategyPPM},
	} {
		strat := strat
		b.Run(strat.name, func(b *testing.B) {
			dec := NewDecoder(sd, WithThreads(1), WithStrategy(strat.s))
			benchDecode(b, sd, sc, func(st *Stripe) error { return dec.Decode(st, sc) }, benchStripeBytes)
		})
	}
}

// BenchmarkAblationPlanReuse measures the planning overhead amortised
// away by plan reuse when many stripes fail identically: fresh-plan
// replans per decode (cache disabled), cached-plan is Decode with the
// default plan cache, reused-plan is the explicit DecodeWithPlan path.
// The latter two should be indistinguishable.
func BenchmarkAblationPlanReuse(b *testing.B) {
	sd, sc := sdWorstCase(b, 16, 16, 2, 2, 1)
	b.Run("fresh-plan", func(b *testing.B) {
		dec := NewDecoder(sd, WithThreads(4), WithPlanCache(0))
		benchDecode(b, sd, sc, func(st *Stripe) error { return dec.Decode(st, sc) }, benchStripeBytes)
	})
	b.Run("cached-plan", func(b *testing.B) {
		dec := NewDecoder(sd, WithThreads(4))
		benchDecode(b, sd, sc, func(st *Stripe) error { return dec.Decode(st, sc) }, benchStripeBytes)
	})
	b.Run("reused-plan", func(b *testing.B) {
		dec := NewDecoder(sd, WithThreads(4))
		plan, err := dec.Plan(sc)
		if err != nil {
			b.Fatal(err)
		}
		benchDecode(b, sd, sc, func(st *Stripe) error { return dec.DecodeWithPlan(plan, st) }, benchStripeBytes)
	})
}

// BenchmarkRepeatedDecodeAllocs isolates per-stripe allocations on the
// repeated-decode path — the whole-disk-rebuild steady state. With the
// plan cache, pooled scratch, pooled sessions and the persistent worker
// pool, a cached Decode should allocate (almost) nothing per stripe;
// the uncached arm shows what replanning costs in allocations.
func BenchmarkRepeatedDecodeAllocs(b *testing.B) {
	sd, sc := sdWorstCase(b, 8, 8, 2, 2, 1)
	for _, threads := range []int{1, 4} {
		b.Run(fmt.Sprintf("cached/T=%d", threads), func(b *testing.B) {
			dec := NewDecoder(sd, WithThreads(threads))
			st := benchSetup(b, sd, sc, 256<<10)
			if err := dec.Decode(st, sc); err != nil { // warm the plan cache
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := dec.Decode(st, sc); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("uncached/T=%d", threads), func(b *testing.B) {
			dec := NewDecoder(sd, WithThreads(threads), WithPlanCache(0))
			st := benchSetup(b, sd, sc, 256<<10)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := dec.Decode(st, sc); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkArrayRepair measures whole-array reconstruction (2 dead
// disks across many stripes) with plan reuse — the deployment-shaped
// workload built on top of the library.
func BenchmarkArrayRepair(b *testing.B) {
	code, err := NewSD(8, 16, 2, 2)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		arr, err := NewArray(code, 8, 2048, int64(i))
		if err != nil {
			b.Fatal(err)
		}
		if err := arr.FailDisks(1, 6); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		stats, err := arr.Repair(4)
		if err != nil {
			b.Fatal(err)
		}
		b.SetBytes(stats.BytesRepaired)
	}
}

// BenchmarkDegradedRead contrasts the LRC local-group repair with the
// RS-wide repair for a single unavailable block (the paper's cloud
// motivation, §I).
func BenchmarkDegradedRead(b *testing.B) {
	lrc, err := NewLRC(12, 3, 2)
	if err != nil {
		b.Fatal(err)
	}
	rs, err := NewRS(17, 1, 5)
	if err != nil {
		b.Fatal(err)
	}
	lost := Scenario{Faulty: []int{3}}
	b.Run("LRC-local", func(b *testing.B) {
		dec := NewDecoder(lrc)
		benchDecode(b, lrc, lost, func(st *Stripe) error { return dec.Decode(st, lost) }, benchStripeBytes)
	})
	b.Run("RS-wide", func(b *testing.B) {
		dec := NewDecoder(rs)
		benchDecode(b, rs, lost, func(st *Stripe) error { return dec.Decode(st, lost) }, benchStripeBytes)
	})
}

// BenchmarkBlockParallelBaseline measures the related-work baseline on
// the Figure 8 reference configuration.
func BenchmarkBlockParallelBaseline(b *testing.B) {
	sd, sc := sdWorstCase(b, 16, 16, 2, 2, 1)
	benchDecode(b, sd, sc, func(st *Stripe) error {
		return BlockParallelDecode(sd, st, sc, 4, nil)
	}, benchStripeBytes)
}

// BenchmarkAblationHybrid compares the standard executor with the
// hybrid executor on a p = 1 shape (RDP double-disk failure), where the
// standard executor is serial and hybrid chunks the byte range. On a
// multi-core host hybrid wins; on one core they tie.
func BenchmarkAblationHybrid(b *testing.B) {
	rdp, err := NewRDP(11)
	if err != nil {
		b.Fatal(err)
	}
	sc, err := rdp.WorstCaseScenario(rand.New(rand.NewSource(42)))
	if err != nil {
		b.Fatal(err)
	}
	b.Run("standard", func(b *testing.B) {
		dec := NewDecoder(rdp, WithThreads(4))
		benchDecode(b, rdp, sc, func(st *Stripe) error { return dec.Decode(st, sc) }, benchStripeBytes)
	})
	b.Run("hybrid", func(b *testing.B) {
		dec := NewDecoder(rdp, WithThreads(4), WithHybrid(true))
		benchDecode(b, rdp, sc, func(st *Stripe) error { return dec.Decode(st, sc) }, benchStripeBytes)
	})
}

// BenchmarkSmallWrite compares the incremental parity update against a
// full stripe re-encode for a single-sector overwrite.
func BenchmarkSmallWrite(b *testing.B) {
	sd, err := NewSD(8, 16, 2, 2)
	if err != nil {
		b.Fatal(err)
	}
	st := benchSetup(b, sd, EncodingScenario(sd), benchStripeBytes)
	fresh := make([]byte, st.SectorSize())
	rand.New(rand.NewSource(42)).Read(fresh)

	b.Run("incremental-update", func(b *testing.B) {
		u, err := NewUpdater(sd)
		if err != nil {
			b.Fatal(err)
		}
		b.SetBytes(int64(st.SectorSize()))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := u.Update(st, 0, fresh, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("full-reencode", func(b *testing.B) {
		dec := NewDecoder(sd, WithThreads(4))
		b.SetBytes(int64(st.SectorSize()))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			copy(st.Sector(0), fresh)
			if err := dec.Encode(st); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationBackends compares the table-driven engine against
// the Cauchy-RS bit-matrix engine (paper reference [8]) on the same
// decode. The winner depends on coefficient bit-density; both are
// measured here on the worked-geometry worst case.
func BenchmarkAblationBackends(b *testing.B) {
	sd, sc := sdWorstCase(b, 8, 16, 2, 2, 1)
	for _, be := range []struct {
		name string
		bk   Backend
	}{
		{"table", BackendTable},
		{"bitmatrix", BackendBitMatrix},
	} {
		be := be
		b.Run(be.name, func(b *testing.B) {
			dec := NewDecoder(sd, WithThreads(4), WithBackend(be.bk))
			st, err := StripeForCode(sd, benchStripeBytes)
			if err != nil {
				b.Fatal(err)
			}
			st.FillDataRandom(1, DataPositions(sd))
			if err := dec.Encode(st); err != nil {
				b.Fatal(err)
			}
			b.SetBytes(int64(st.TotalBytes()))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				st.Scribble(int64(i), sc.Faulty)
				b.StartTimer()
				if err := dec.Decode(st, sc); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
