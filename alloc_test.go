package ppm

import (
	"math/rand"
	"testing"
)

// TestRepeatedDecodeAllocationFree pins the steady-state contract of
// the rebuild workload end to end: with a cached (or explicitly reused)
// plan and one thread, every per-stripe structure — compiled row
// kernels, tile view arenas, Normal-sequence scratch, executor
// sessions — comes from plan state or pools, so a repeated decode
// performs zero heap allocations even though the kernel underneath now
// sweeps the sectors tile by tile.
func TestRepeatedDecodeAllocationFree(t *testing.T) {
	if raceEnabled {
		t.Skip("race-mode sync.Pool deliberately drops items; alloc counts are meaningless")
	}
	sd, err := NewSD(8, 8, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	sc, err := sd.WorstCaseScenario(rand.New(rand.NewSource(42)), 1)
	if err != nil {
		t.Fatal(err)
	}
	// 512 KiB stripe: sectors span several 32 KiB tiles, so the tiled
	// drivers run their multi-tile loops, while staying below the
	// parallel fan-out cutoff on the serial T=1 path.
	st, err := StripeForCode(sd, 512<<10)
	if err != nil {
		t.Fatal(err)
	}
	st.FillDataRandom(1, DataPositions(sd))
	if err := TraditionalEncode(sd, st, nil); err != nil {
		t.Fatal(err)
	}

	dec := NewDecoder(sd, WithThreads(1))
	plan, err := dec.Plan(sc)
	if err != nil {
		t.Fatal(err)
	}
	if err := dec.Decode(st, sc); err != nil { // warm plan cache and pools
		t.Fatal(err)
	}

	if avg := testing.AllocsPerRun(20, func() {
		if err := dec.DecodeWithPlan(plan, st); err != nil {
			t.Fatal(err)
		}
	}); avg != 0 {
		t.Errorf("DecodeWithPlan allocates %.1f/op, want 0", avg)
	}
	if avg := testing.AllocsPerRun(20, func() {
		if err := dec.Decode(st, sc); err != nil {
			t.Fatal(err)
		}
	}); avg != 0 {
		t.Errorf("cached Decode allocates %.1f/op, want 0", avg)
	}
}
